// Zero-perturbation metrics registry: monotonic counters, gauges, and
// fixed-bucket histograms, updated through lock-free per-thread shards that
// are merged only when a snapshot is taken.
//
// Determinism contract (DESIGN.md §10): instrumentation is compiled in
// everywhere but inert unless enabled — every hot-path update is a single
// relaxed atomic load of the enabled flag followed by an early return. When
// enabled, updates are relaxed atomic adds into a shard owned by the calling
// thread, so they never synchronize, allocate, or reorder the instrumented
// computation; figure outputs are bit-identical with observability on or off
// (tests/obs/differential_test.cc holds the pipeline to exactly this).
//
// Handle pattern at an instrumentation site:
//
//   static obs::Counter& c = obs::GetCounter("ingest/lines_kept", "lines");
//   c.Add(report.kept);
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and is
// expected on cold paths only; the returned references stay valid for the
// process lifetime (ResetMetrics zeroes values but never unregisters).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace lockdown::obs {

/// Global metrics gate; relaxed-atomic, safe from any thread.
[[nodiscard]] bool MetricsEnabled() noexcept;
void SetMetricsEnabled(bool on) noexcept;

/// Monotonic counter. Add is wait-free when enabled, a no-op when not.
class Counter {
 public:
  void Add(std::uint64_t n) noexcept;
  void Increment() noexcept { Add(1); }

 private:
  friend class Registry;
  explicit Counter(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Last-write-wins instantaneous value (RSS, fill ratios, budget headroom).
class Gauge {
 public:
  void Set(double value) noexcept;

 private:
  friend class Registry;
  explicit Gauge(std::uint32_t id) noexcept : id_(id) {}
  std::uint32_t id_;
};

/// Fixed bucket layouts; bounds are upper-inclusive ("le"), with an implicit
/// overflow bucket past the last bound.
enum class Buckets : std::uint8_t {
  kDurationUs,  ///< log-ish microsecond grid, 1us .. 60s
  kSizeBytes,   ///< power-of-4-ish byte grid, 64B .. 4GiB
  kPercent,     ///< coarse percentage grid, 1% .. 200%
};

/// Fixed-bucket histogram over non-negative integer values (us, bytes, %).
class Histogram {
 public:
  void Observe(std::uint64_t value) noexcept;

 private:
  friend class Registry;
  Histogram(std::uint32_t id, const std::uint64_t* bounds,
            std::uint32_t num_bounds) noexcept
      : id_(id), bounds_(bounds), num_bounds_(num_bounds) {}
  std::uint32_t id_;
  const std::uint64_t* bounds_;
  std::uint32_t num_bounds_;
};

/// Registers (or finds) a metric by name. The unit is recorded on first
/// registration; later calls with the same name return the same handle.
/// Throws std::length_error if a fixed per-kind capacity is exhausted.
[[nodiscard]] Counter& GetCounter(std::string_view name,
                                  std::string_view unit = "");
[[nodiscard]] Gauge& GetGauge(std::string_view name, std::string_view unit = "");
[[nodiscard]] Histogram& GetHistogram(std::string_view name, Buckets kind,
                                      std::string_view unit = "");

/// Point-in-time merged view of every shard, in registration order.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::string unit;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::string unit;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::string unit;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> bounds;         ///< upper bounds ("le")
    std::vector<std::uint64_t> bucket_counts;  ///< bounds.size() + 1 (overflow)
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

[[nodiscard]] MetricsSnapshot SnapshotMetrics();

/// Serializes a snapshot as one JSON document:
/// {"counters": [...], "gauges": [...], "histograms": [...]}. Non-finite
/// gauge values render as null (JSON has no NaN/Inf); names are escaped.
void WriteMetricsJson(std::ostream& out);

/// Zeroes every counter/gauge/histogram value in every shard. Registrations
/// (and outstanding handles) stay valid. For tests and repeated runs.
void ResetMetrics() noexcept;

/// Minimal JSON string escaping shared by the obs serializers.
[[nodiscard]] std::string JsonEscape(std::string_view s);

}  // namespace lockdown::obs
