#include "obs/obs.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>  // std::once_flag / std::call_once only

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lockdown::obs {
namespace {

struct OutputConfig {
  util::Mutex mu;
  std::string metrics_path GUARDED_BY(mu);
  std::string trace_path GUARDED_BY(mu);
  std::once_flag exit_hook;
  std::once_flag env_once;
};

OutputConfig& Config() {
  static OutputConfig* config = new OutputConfig();
  return *config;
}

void RegisterExitHook() {
  std::call_once(Config().exit_hook, [] { std::atexit(FlushOutputs); });
}

}  // namespace

void EnableMetricsOutput(std::string_view path) {
  {
    const util::MutexLock lock(Config().mu);
    Config().metrics_path = std::string(path);
  }
  SetMetricsEnabled(true);
  RegisterExitHook();
}

void EnableTraceOutput(std::string_view path) {
  {
    const util::MutexLock lock(Config().mu);
    Config().trace_path = std::string(path);
  }
  SetTracingEnabled(true);
  RegisterExitHook();
}

void ConfigureFromEnv() {
  std::call_once(Config().env_once, [] {
    if (const char* path = std::getenv("LOCKDOWN_METRICS");
        path != nullptr && path[0] != '\0') {
      EnableMetricsOutput(path);
    }
    if (const char* path = std::getenv("LOCKDOWN_TRACE");
        path != nullptr && path[0] != '\0') {
      EnableTraceOutput(path);
    }
  });
}

std::string MetricsOutputPath() {
  const util::MutexLock lock(Config().mu);
  return Config().metrics_path;
}

std::string TraceOutputPath() {
  const util::MutexLock lock(Config().mu);
  return Config().trace_path;
}

void FlushOutputs() noexcept {
  std::string metrics_path;
  std::string trace_path;
  {
    const util::MutexLock lock(Config().mu);
    metrics_path = Config().metrics_path;
    trace_path = Config().trace_path;
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
    if (out) {
      WriteMetricsJson(out);
    }
    if (!out) {
      std::fprintf(stderr, "obs: cannot write metrics to %s\n",
                   metrics_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
    if (out) {
      WriteChromeTrace(out);
    }
    if (!out) {
      std::fprintf(stderr, "obs: cannot write trace to %s\n",
                   trace_path.c_str());
    }
  }
}

}  // namespace lockdown::obs
