#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lockdown::obs {
namespace {

// Hard cap on buffered spans; beyond it spans are counted as dropped rather
// than growing without bound (a 1M-persona run emits a lot of file spans).
constexpr std::size_t kMaxTraceEvents = std::size_t{1} << 20;

std::atomic<bool> g_tracing_enabled{false};

struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

struct TraceBuffer {
  util::Mutex mu;
  std::vector<TraceEvent> events GUARDED_BY(mu);
  std::uint64_t dropped GUARDED_BY(mu) = 0;
  std::int64_t epoch_ns GUARDED_BY(mu) = 0;  // set on first recorded span
  std::uint32_t next_tid GUARDED_BY(mu) = 1;
};

TraceBuffer& Buffer() {
  static TraceBuffer* buffer = new TraceBuffer();  // outlives atexit writers
  return *buffer;
}

std::int64_t NowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Small dense per-thread ids so Perfetto tracks read as "lane 1..N" rather
// than opaque pthread handles.
std::uint32_t LocalTid() {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) {
    TraceBuffer& buf = Buffer();
    const util::MutexLock lock(buf.mu);
    tid = buf.next_tid++;
  }
  return tid;
}

// Current nesting depth of active spans on this thread.
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

bool TracingEnabled() noexcept {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool on) noexcept {
  g_tracing_enabled.store(on, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!TracingEnabled() && !MetricsEnabled()) return;
  active_ = true;
  name_ = name;
  ++t_span_depth;
  start_ns_ = NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::int64_t end_ns = NowNs();
  const std::uint32_t depth = --t_span_depth;
  if (MetricsEnabled()) {
    // Registration takes the registry mutex, but only for names not seen
    // before on this process; steady-state is a shard fetch_add.
    GetHistogram(name_, Buckets::kDurationUs, "us")
        .Observe(static_cast<std::uint64_t>((end_ns - start_ns_) / 1000));
  }
  if (!TracingEnabled()) return;
  TraceBuffer& buf = Buffer();
  const std::uint32_t tid = LocalTid();
  const util::MutexLock lock(buf.mu);
  if (buf.events.size() >= kMaxTraceEvents) {
    ++buf.dropped;
    return;
  }
  if (buf.epoch_ns == 0) buf.epoch_ns = start_ns_;
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.tid = tid;
  ev.depth = depth;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns - start_ns_;
  buf.events.push_back(std::move(ev));
}

std::size_t TraceEventCount() noexcept {
  TraceBuffer& buf = Buffer();
  const util::MutexLock lock(buf.mu);
  return buf.events.size();
}

std::uint64_t TraceDroppedCount() noexcept {
  TraceBuffer& buf = Buffer();
  const util::MutexLock lock(buf.mu);
  return buf.dropped;
}

void WriteChromeTrace(std::ostream& out) {
  TraceBuffer& buf = Buffer();
  const util::MutexLock lock(buf.mu);
  std::string doc;
  doc += "{\"traceEvents\": [\n";
  std::uint32_t max_tid = 0;
  bool first = true;
  for (const TraceEvent& ev : buf.events) {
    if (ev.tid > max_tid) max_tid = ev.tid;
    if (!first) doc += ",\n";
    first = false;
    doc += "  {\"name\": \"" + JsonEscape(ev.name) + "\", ";
    char buf_num[128];
    std::snprintf(buf_num, sizeof buf_num,
                  "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"ts\": %.3f, \"dur\": %.3f, \"args\": {\"depth\": %u}}",
                  ev.tid,
                  static_cast<double>(ev.start_ns - buf.epoch_ns) / 1000.0,
                  static_cast<double>(ev.dur_ns) / 1000.0, ev.depth);
    doc += buf_num;
  }
  // Thread-name metadata so Perfetto labels the lanes.
  for (std::uint32_t tid = 1; tid <= max_tid; ++tid) {
    if (!first) doc += ",\n";
    first = false;
    char buf_meta[160];
    std::snprintf(buf_meta, sizeof buf_meta,
                  "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                  "\"tid\": %u, \"args\": {\"name\": \"lane %u\"}}",
                  tid, tid);
    doc += buf_meta;
  }
  doc += "\n]}\n";
  out << doc;
}

void ResetTrace() noexcept {
  TraceBuffer& buf = Buffer();
  const util::MutexLock lock(buf.mu);
  buf.events.clear();
  buf.dropped = 0;
  buf.epoch_ns = 0;
}

}  // namespace lockdown::obs
