// Umbrella header for the observability subsystem plus run configuration:
// turning metrics/tracing on, binding output files, and the env hookup used
// by benches (LOCKDOWN_METRICS / LOCKDOWN_TRACE).
//
// Output files are written by a process-exit hook registered on the first
// Enable*Output call, so instrumented code never needs to know whether a
// run wants output — lockdown_cli simply binds the paths up front and every
// span/counter recorded anywhere in the process lands in the files.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/trace.h"    // IWYU pragma: export

namespace lockdown::obs {

/// Enables metrics and arranges for the merged snapshot to be written as
/// JSON to `path` at process exit. Last call wins if repeated.
void EnableMetricsOutput(std::string_view path);

/// Enables tracing and arranges for the Chrome trace-event JSON to be
/// written to `path` at process exit. Last call wins if repeated.
void EnableTraceOutput(std::string_view path);

/// Reads LOCKDOWN_METRICS / LOCKDOWN_TRACE (each a file path) and calls the
/// matching Enable*Output. Idempotent; explicit flags may override after.
void ConfigureFromEnv();

/// Paths currently bound for exit-time output; empty when unbound (tests).
[[nodiscard]] std::string MetricsOutputPath();
[[nodiscard]] std::string TraceOutputPath();

/// Writes any bound outputs immediately (the exit hook calls this; tests
/// and long-lived embedders may call it directly). Unwritable paths are
/// reported to stderr, never thrown.
void FlushOutputs() noexcept;

}  // namespace lockdown::obs
