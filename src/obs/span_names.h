// The span-name registry: every static OBS_SPAN name in the tree, sorted.
//
// Span names double as histogram names in --metrics-out JSON and as track
// labels in dashboards, so an unregistered (typo'd, renamed-on-one-side)
// name silently forks a timing series. lockdown_lint rule LD004 checks that
// every `OBS_SPAN("...")` literal in src/ and tools/ appears here and that
// no entry here is dead — add the name below in sorted order when adding a
// span, remove it when removing one.
//
// Dynamically named spans (e.g. the per-file "ingest/<name>" spans, built
// with ScopedSpan directly) are exempt: the rule only sees OBS_SPAN
// literals, and dynamic names are namespaced by their static prefix.
#pragma once

#include <array>
#include <string_view>

namespace lockdown::obs {

inline constexpr std::array<std::string_view, 38> kRegisteredSpanNames = {
    "ingest/export",
    "pipeline/collect",
    "pipeline/pass1_attribution",
    "pipeline/pass2_retention_dns",
    "pipeline/pass3_assemble",
    "pipeline/process",
    "pipeline/ua_sightings",
    "query/build_columns",
    "sim/generate",
    "store/load",
    "store/open",
    "store/save",
    "store/verify_checksums",
    "stream/categories",
    "stream/diurnal",
    "stream/fig1_active_devices",
    "stream/fig2_bytes_per_device",
    "stream/fig3_hour_of_week",
    "stream/fig4_population_split",
    "stream/fig6_social",
    "stream/fig7_steam",
    "stream/fig8_switch_counts",
    "stream/headline",
    "stream/pass",
    "study/build_masks",
    "study/categories",
    "study/census",
    "study/diurnal",
    "study/fig1_active_devices",
    "study/fig2_bytes_per_device",
    "study/fig3_hour_of_week",
    "study/fig4_population_split",
    "study/fig5_zoom_daily",
    "study/fig6_social",
    "study/fig7_steam",
    "study/fig8_switch_counts",
    "study/fig8_switch_daily",
    "study/headline",
};

}  // namespace lockdown::obs
