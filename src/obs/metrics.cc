#include "obs/metrics.h"

#include <array>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lockdown::obs {
namespace {

// Fixed capacities keep shard layout static so handle ids can index shard
// arrays without any indirection or resizing race. Exceeding one is a
// programming error (too many distinct metric names), reported loudly.
constexpr std::uint32_t kMaxCounters = 256;
constexpr std::uint32_t kMaxGauges = 64;
constexpr std::uint32_t kMaxHistograms = 96;
constexpr std::uint32_t kMaxBuckets = 28;

// Log-ish microsecond grid, 1us .. 60s.
constexpr std::array<std::uint64_t, 24> kDurationBoundsUs = {
    1,      2,      5,       10,      20,      50,       100,      200,
    500,    1000,   2000,    5000,    10000,   20000,    50000,    100000,
    200000, 500000, 1000000, 2000000, 5000000, 10000000, 30000000, 60000000};

// Byte-size grid, 64B .. 4GiB.
constexpr std::array<std::uint64_t, 14> kSizeBoundsBytes = {
    64,        256,        1024,       4096,        16384,
    65536,     262144,     1048576,    4194304,     16777216,
    67108864,  268435456,  1073741824, 4294967296ULL};

// Coarse percentage grid.
constexpr std::array<std::uint64_t, 13> kPercentBounds = {
    1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100};

std::atomic<bool> g_metrics_enabled{false};

struct HistShard {
  std::atomic<std::uint64_t> count;
  std::atomic<std::uint64_t> sum;
  std::array<std::atomic<std::uint64_t>, kMaxBuckets + 1> buckets;
};

// One shard per thread that ever touched a metric. Shards are owned by the
// registry and retained after thread exit so totals stay exact.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters;
  std::array<HistShard, kMaxHistograms> hists;
};

void AppendJsonUint(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

// Not in the anonymous namespace: the metric classes befriend
// lockdown::obs::Registry by name so only the registry mints handles.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry();  // never destroyed: handles
    return *instance;                            // and shards outlive atexit
  }

  Counter& GetCounter(std::string_view name, std::string_view unit) {
    const util::MutexLock lock(mu_);
    auto it = counter_ids_.find(std::string(name));
    if (it != counter_ids_.end()) return counters_[it->second].handle;
    const auto id = static_cast<std::uint32_t>(counters_.size());
    if (id >= kMaxCounters) {
      throw std::length_error("obs: counter capacity exhausted");
    }
    counters_.push_back(CounterInfo{std::string(name), std::string(unit),
                                    Counter(id)});
    counter_ids_.emplace(counters_.back().name, id);
    return counters_.back().handle;
  }

  Gauge& GetGauge(std::string_view name, std::string_view unit) {
    const util::MutexLock lock(mu_);
    auto it = gauge_ids_.find(std::string(name));
    if (it != gauge_ids_.end()) return gauges_[it->second].handle;
    const auto id = static_cast<std::uint32_t>(gauges_.size());
    if (id >= kMaxGauges) {
      throw std::length_error("obs: gauge capacity exhausted");
    }
    gauges_.push_back(
        GaugeInfo{std::string(name), std::string(unit), Gauge(id)});
    gauge_values_.emplace_back(0.0);
    gauge_ids_.emplace(gauges_.back().name, id);
    return gauges_.back().handle;
  }

  Histogram& GetHistogram(std::string_view name, Buckets kind,
                          std::string_view unit) {
    const util::MutexLock lock(mu_);
    auto it = hist_ids_.find(std::string(name));
    if (it != hist_ids_.end()) return hists_[it->second].handle;
    const auto id = static_cast<std::uint32_t>(hists_.size());
    if (id >= kMaxHistograms) {
      throw std::length_error("obs: histogram capacity exhausted");
    }
    const std::uint64_t* bounds = nullptr;
    std::uint32_t num_bounds = 0;
    switch (kind) {
      case Buckets::kDurationUs:
        bounds = kDurationBoundsUs.data();
        num_bounds = static_cast<std::uint32_t>(kDurationBoundsUs.size());
        break;
      case Buckets::kSizeBytes:
        bounds = kSizeBoundsBytes.data();
        num_bounds = static_cast<std::uint32_t>(kSizeBoundsBytes.size());
        break;
      case Buckets::kPercent:
        bounds = kPercentBounds.data();
        num_bounds = static_cast<std::uint32_t>(kPercentBounds.size());
        break;
    }
    hists_.push_back(HistogramInfo{std::string(name), std::string(unit),
                                   Histogram(id, bounds, num_bounds)});
    hist_ids_.emplace(hists_.back().name, id);
    return hists_.back().handle;
  }

  // Lazily creates (and permanently registers) the calling thread's shard.
  Shard& LocalShard() {
    thread_local Shard* shard = nullptr;
    if (shard == nullptr) {
      auto owned = std::make_unique<Shard>();  // atomics value-initialize to 0
      Shard* raw = owned.get();
      const util::MutexLock lock(mu_);
      shards_.push_back(std::move(owned));
      shard = raw;
    }
    return *shard;
  }

  void SetGauge(std::uint32_t id, double value) noexcept {
    // Gauge ids only exist post-registration and gauge_values_ is a deque
    // (stable addresses), so this lock-free store is safe.
    gauge_values_[id].store(value, std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() {
    const util::MutexLock lock(mu_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      std::uint64_t total = 0;
      for (const auto& shard : shards_) {
        total += shard->counters[i].load(std::memory_order_relaxed);
      }
      snap.counters.push_back({counters_[i].name, counters_[i].unit, total});
    }
    snap.gauges.reserve(gauges_.size());
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
      snap.gauges.push_back(
          {gauges_[i].name, gauges_[i].unit,
           gauge_values_[i].load(std::memory_order_relaxed)});
    }
    snap.histograms.reserve(hists_.size());
    for (std::size_t i = 0; i < hists_.size(); ++i) {
      MetricsSnapshot::HistogramValue hv;
      hv.name = hists_[i].name;
      hv.unit = hists_[i].unit;
      const Histogram& h = hists_[i].handle;
      hv.bounds.assign(h.bounds_, h.bounds_ + h.num_bounds_);
      hv.bucket_counts.assign(h.num_bounds_ + 1, 0);
      for (const auto& shard : shards_) {
        const HistShard& hs = shard->hists[i];
        hv.count += hs.count.load(std::memory_order_relaxed);
        hv.sum += hs.sum.load(std::memory_order_relaxed);
        for (std::uint32_t b = 0; b <= h.num_bounds_; ++b) {
          hv.bucket_counts[b] += hs.buckets[b].load(std::memory_order_relaxed);
        }
      }
      snap.histograms.push_back(std::move(hv));
    }
    return snap;
  }

  void Reset() noexcept {
    const util::MutexLock lock(mu_);
    for (auto& shard : shards_) {
      for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
      for (auto& h : shard->hists) {
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
        for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& g : gauge_values_) g.store(0.0, std::memory_order_relaxed);
  }

 private:
  struct CounterInfo {
    std::string name;
    std::string unit;
    Counter handle;
  };
  struct GaugeInfo {
    std::string name;
    std::string unit;
    Gauge handle;
  };
  struct HistogramInfo {
    std::string name;
    std::string unit;
    Histogram handle;
  };

  Registry() = default;

  util::Mutex mu_;
  // Deques: stable element addresses, so returned handle references and the
  // lock-free gauge store stay valid across registrations.
  std::deque<CounterInfo> counters_ GUARDED_BY(mu_);
  std::deque<GaugeInfo> gauges_ GUARDED_BY(mu_);
  // NOT guarded: elements are relaxed atomics written lock-free by
  // Gauge::Set; only the deque's *shape* (emplace_back in GetGauge) is
  // protected by mu_, and a handle's id never races its own registration.
  std::deque<std::atomic<double>> gauge_values_;
  std::deque<HistogramInfo> hists_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t> counter_ids_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t> gauge_ids_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t> hist_ids_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Shard>> shards_ GUARDED_BY(mu_);
};

bool MetricsEnabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void Counter::Add(std::uint64_t n) noexcept {
  if (!MetricsEnabled()) return;
  Registry::Instance().LocalShard().counters[id_].fetch_add(
      n, std::memory_order_relaxed);
}

void Gauge::Set(double value) noexcept {
  if (!MetricsEnabled()) return;
  Registry::Instance().SetGauge(id_, value);
}

void Histogram::Observe(std::uint64_t value) noexcept {
  if (!MetricsEnabled()) return;
  std::uint32_t b = 0;
  while (b < num_bounds_ && value > bounds_[b]) ++b;
  HistShard& hs = Registry::Instance().LocalShard().hists[id_];
  hs.count.fetch_add(1, std::memory_order_relaxed);
  hs.sum.fetch_add(value, std::memory_order_relaxed);
  hs.buckets[b].fetch_add(1, std::memory_order_relaxed);
}

Counter& GetCounter(std::string_view name, std::string_view unit) {
  return Registry::Instance().GetCounter(name, unit);
}

Gauge& GetGauge(std::string_view name, std::string_view unit) {
  return Registry::Instance().GetGauge(name, unit);
}

Histogram& GetHistogram(std::string_view name, Buckets kind,
                        std::string_view unit) {
  return Registry::Instance().GetHistogram(name, kind, unit);
}

MetricsSnapshot SnapshotMetrics() { return Registry::Instance().Snapshot(); }

void ResetMetrics() noexcept { Registry::Instance().Reset(); }

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteMetricsJson(std::ostream& out) {
  const MetricsSnapshot snap = SnapshotMetrics();
  std::string doc;
  doc += "{\n  \"counters\": [";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    doc += (i == 0) ? "\n" : ",\n";
    doc += "    {\"name\": \"" + JsonEscape(c.name) + "\", \"unit\": \"" +
           JsonEscape(c.unit) + "\", \"value\": ";
    AppendJsonUint(doc, c.value);
    doc += "}";
  }
  doc += "\n  ],\n  \"gauges\": [";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& g = snap.gauges[i];
    doc += (i == 0) ? "\n" : ",\n";
    doc += "    {\"name\": \"" + JsonEscape(g.name) + "\", \"unit\": \"" +
           JsonEscape(g.unit) + "\", \"value\": ";
    if (std::isfinite(g.value)) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", g.value);
      doc += buf;
    } else {
      doc += "null";
    }
    doc += "}";
  }
  doc += "\n  ],\n  \"histograms\": [";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    doc += (i == 0) ? "\n" : ",\n";
    doc += "    {\"name\": \"" + JsonEscape(h.name) + "\", \"unit\": \"" +
           JsonEscape(h.unit) + "\", \"count\": ";
    AppendJsonUint(doc, h.count);
    doc += ", \"sum\": ";
    AppendJsonUint(doc, h.sum);
    doc += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (b != 0) doc += ", ";
      doc += "{\"le\": ";
      if (b < h.bounds.size()) {
        AppendJsonUint(doc, h.bounds[b]);
      } else {
        doc += "null";
      }
      doc += ", \"count\": ";
      AppendJsonUint(doc, h.bucket_counts[b]);
      doc += "}";
    }
    doc += "]}";
  }
  doc += "\n  ]\n}\n";
  out << doc;
}

}  // namespace lockdown::obs
