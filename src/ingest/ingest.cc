#include "ingest/ingest.h"

#include <cerrno>
#include <sstream>

#include "io/io.h"
#include "obs/obs.h"
#include "util/strings.h"

namespace lockdown::ingest {

std::optional<Mode> ParseMode(std::string_view s) noexcept {
  if (s == "strict") return Mode::kStrict;
  if (s == "tolerant") return Mode::kTolerant;
  return std::nullopt;
}

const char* ToString(ErrorClass error) noexcept {
  switch (error) {
    case ErrorClass::kTruncatedLine: return "truncated_line";
    case ErrorClass::kFieldCount: return "field_count";
    case ErrorClass::kBadTimestamp: return "bad_timestamp";
    case ErrorClass::kBadIp: return "bad_ip";
    case ErrorClass::kBadMac: return "bad_mac";
    case ErrorClass::kBadNumber: return "bad_number";
    case ErrorClass::kBadValue: return "bad_value";
    case ErrorClass::kBadHeader: return "bad_header";
  }
  return "unknown";
}

IoError::IoError(const std::filesystem::path& path, const char* op, int err)
    : std::runtime_error(path.string() + ": " + op + ": " + util::ErrnoString(err)) {}

void IngestReport::Merge(const IngestReport& other, std::size_t max_samples) {
  if (source.empty()) {
    source = other.source;
  } else if (!other.source.empty()) {
    source += "+" + other.source;
  }
  lines_total += other.lines_total;
  kept += other.kept;
  rejected += other.rejected;
  for (int i = 0; i < kNumErrorClasses; ++i) by_class[i] += other.by_class[i];
  header_ok = header_ok && other.header_ok;
  for (const RejectedLine& s : other.samples) {
    if (samples.size() >= max_samples) break;
    samples.push_back(s);
  }
}

std::string IngestReport::Summary() const {
  std::ostringstream out;
  out << (source.empty() ? "input" : source) << ": kept " << kept << "/"
      << lines_total;
  if (rejected == 0) {
    out << ", no rejected lines";
    if (!header_ok) out << " (header missing)";
    return std::move(out).str();
  }
  out << ", rejected " << rejected << " ("
      << util::FormatDouble(100.0 * error_rate(), 2) << "%):";
  bool first = true;
  for (int i = 0; i < kNumErrorClasses; ++i) {
    if (by_class[i] == 0) continue;
    out << (first ? " " : ", ") << by_class[i] << " "
        << ToString(static_cast<ErrorClass>(i));
    first = false;
  }
  return std::move(out).str();
}

void RecordReport(const IngestReport& report) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& kept = obs::GetCounter("ingest/lines_kept", "lines");
  static obs::Counter& rejected =
      obs::GetCounter("ingest/lines_rejected", "lines");
  kept.Add(report.kept);
  rejected.Add(report.rejected);
  for (int i = 0; i < kNumErrorClasses; ++i) {
    if (report.by_class[i] == 0) continue;
    obs::GetCounter(
        std::string("ingest/rejected_") + ToString(static_cast<ErrorClass>(i)),
        "lines")
        .Add(report.by_class[i]);
  }
}

namespace detail {

struct QuarantineWriter::State {
  io::File out;
};

QuarantineWriter::QuarantineWriter(const IngestOptions& options) {
  if (options.quarantine_dir.empty()) return;
  target_ = options.quarantine_dir /
            (options.source.empty() ? "input.rej" : options.source + ".rej");
}

QuarantineWriter::~QuarantineWriter() { delete state_; }

void QuarantineWriter::Add(std::string_view line) {
  if (target_.empty()) return;
  try {
    if (state_ == nullptr) {
      std::error_code ec;
      std::filesystem::create_directories(target_.parent_path(), ec);
      if (ec) throw IoError(target_.parent_path(), "mkdir", ec.value());
      state_ = new State{io::File::Create(target_)};
    }
    state_->out.WriteAll(std::string(line) + '\n');
  } catch (const io::IoError& e) {
    // Ingest callers (and the CLI's exit-code mapping) speak
    // ingest::IoError; re-badge the shim's exception at the boundary.
    throw IoError(e.path(), e.op().c_str(), e.error_code());
  }
}

void QuarantineWriter::Finish(IngestReport& report) {
  if (state_ == nullptr) return;
  try {
    state_->out.Close();
  } catch (const io::IoError& e) {
    throw IoError(e.path(), e.op().c_str(), e.error_code());
  }
  report.quarantine_file = target_;
}

}  // namespace detail
}  // namespace lockdown::ingest
