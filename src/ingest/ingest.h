// Fault-tolerant ingest layer shared by every TSV log reader.
//
// Real collection-box logs (Zeek conn.log, DHCP/DNS/UA logs from a live dorm
// tap) arrive with truncated tails, garbage lines and partial rotations. The
// readers in flow/ and logs/ recover at line granularity through this layer:
// each malformed row is classified into a fixed error taxonomy and either
// aborts the read (strict mode, the historical behavior) or is skipped and
// accounted (tolerant mode), with an error budget bounding how much loss is
// acceptable before the file as a whole is rejected.
//
// Accounting contract, relied on by the differential fault-injection suite:
// for every reader and any input whatsoever,
//
//   report.kept + report.rejected == report.lines_total
//
// where lines_total counts every non-blank line except a valid header line.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/strings.h"

namespace lockdown::ingest {

/// Strict reproduces the historical all-or-nothing readers: the first
/// malformed row rejects the whole document. Tolerant skips malformed rows
/// and fails only when the rejection rate exceeds the error budget.
enum class Mode : std::uint8_t { kStrict, kTolerant };

[[nodiscard]] constexpr const char* ToString(Mode mode) noexcept {
  return mode == Mode::kStrict ? "strict" : "tolerant";
}

/// Parses "strict"/"tolerant"; nullopt otherwise (for CLI flags).
[[nodiscard]] std::optional<Mode> ParseMode(std::string_view s) noexcept;

/// Why a line was rejected. Fixed taxonomy; every rejection lands in exactly
/// one class (see DESIGN.md §8 for the table).
enum class ErrorClass : std::uint8_t {
  kTruncatedLine,  ///< final line of a file with no trailing newline failed
  kFieldCount,     ///< wrong number of tab-separated fields
  kBadTimestamp,   ///< unparseable or overflowing timestamp field
  kBadIp,          ///< unparseable IPv4 field
  kBadMac,         ///< unparseable MAC field
  kBadNumber,      ///< unparseable numeric field (duration, port, bytes, ttl)
  kBadValue,       ///< parseable field with an invalid value (proto, empty UA)
  kBadHeader,      ///< header line missing or garbled
};
inline constexpr int kNumErrorClasses = 8;

[[nodiscard]] const char* ToString(ErrorClass error) noexcept;

/// Ingest failures that are about the environment, not the data: missing
/// files, open/read/write errors. Maps to exit code 2 in lockdown_cli.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& message) : std::runtime_error(message) {}
  /// Formats "path: op: strerror(err)" from the captured errno.
  IoError(const std::filesystem::path& path, const char* op, int err);
};

/// Malformed input beyond what the mode allows: any malformed row in strict
/// mode, or a rejection rate above the budget in tolerant mode. Maps to exit
/// code 3 in lockdown_cli.
class BudgetError : public std::runtime_error {
 public:
  explicit BudgetError(const std::string& message) : std::runtime_error(message) {}
};

struct IngestOptions {
  Mode mode = Mode::kStrict;
  /// Tolerant mode: maximum rejected/lines_total fraction before the whole
  /// document is rejected anyway. Ignored in strict mode.
  double max_error_rate = 0.01;
  /// How many offending lines to retain verbatim in the report.
  std::size_t max_samples = 10;
  /// When non-empty, every rejected line is appended verbatim to
  /// `quarantine_dir/<source>.rej` for later inspection or repair.
  std::filesystem::path quarantine_dir;
  /// Label for reports and the quarantine file name (usually the file name).
  std::string source = "input";
};

/// One retained offending line.
struct RejectedLine {
  std::uint64_t line = 0;  ///< 1-based line number in the source document
  ErrorClass error = ErrorClass::kBadValue;
  std::string text;  ///< the offending line, clamped to a sane length
};

/// Per-document ingest outcome; aggregable across files with Merge().
struct IngestReport {
  std::string source;
  std::uint64_t lines_total = 0;  ///< non-blank lines excluding a valid header
  std::uint64_t kept = 0;
  std::uint64_t rejected = 0;
  std::uint64_t by_class[kNumErrorClasses] = {};
  bool header_ok = true;
  std::vector<RejectedLine> samples;          ///< first max_samples rejections
  std::filesystem::path quarantine_file;      ///< set iff any line was written

  [[nodiscard]] double error_rate() const noexcept {
    return lines_total == 0 ? 0.0
                            : static_cast<double>(rejected) /
                                  static_cast<double>(lines_total);
  }

  /// Folds `other` into this report (totals, per-class counts, samples up to
  /// `max_samples`; header_ok ANDs). `source` becomes a "+"-joined list.
  void Merge(const IngestReport& other, std::size_t max_samples = 10);

  /// One-line human summary: "conn.log: kept 12034/12041, rejected 7
  /// (0.06%): 4 bad_number, 2 field_count, 1 truncated_line".
  [[nodiscard]] std::string Summary() const;
};

/// Folds a finished report into the obs metrics registry: ingest/lines_kept,
/// ingest/lines_rejected, and one ingest/rejected_<class> counter per
/// taxonomy class that rejected anything. No-op unless metrics are enabled.
void RecordReport(const IngestReport& report);

namespace detail {

/// Lazily opened quarantine sink; no file is created unless a line is
/// rejected. Throws IoError if the quarantine file cannot be written.
class QuarantineWriter {
 public:
  explicit QuarantineWriter(const IngestOptions& options);
  ~QuarantineWriter();
  QuarantineWriter(const QuarantineWriter&) = delete;
  QuarantineWriter& operator=(const QuarantineWriter&) = delete;

  void Add(std::string_view line);
  /// Flushes, verifies stream state, and records the path in the report.
  void Finish(IngestReport& report);

 private:
  struct State;
  std::filesystem::path target_;  // empty = quarantine disabled
  State* state_ = nullptr;
};

inline constexpr std::size_t kSampleClamp = 200;  // bytes kept per sample line

}  // namespace detail

/// Shared line-recovery driver behind all four log readers. Splits `text`,
/// validates the header, and runs `parse(line, record)` — which returns
/// nullopt on success or the rejection's ErrorClass — over every non-blank
/// line, enforcing the accounting contract above.
///
/// Returns nullopt when the document is rejected as a whole: any malformed
/// row (or missing header) in strict mode, or a rejection rate above
/// `options.max_error_rate` in tolerant mode. `report` is always filled with
/// what happened, including why a nullopt came back.
template <typename Record, typename ParseFn>
std::optional<std::vector<Record>> ParseLog(std::string_view text,
                                            std::string_view header,
                                            const IngestOptions& options,
                                            IngestReport& report,
                                            ParseFn&& parse) {
  report = IngestReport{};
  report.source = options.source;

  const auto lines = util::Split(text, '\n');
  const bool ends_with_newline = !text.empty() && text.back() == '\n';
  // Index of the last non-blank line: a parse failure there on a document
  // with no trailing newline is a cut-off tail, not ordinary garbage.
  std::size_t last_content = lines.size();
  for (std::size_t i = lines.size(); i-- > 0;) {
    if (!util::Trim(lines[i]).empty()) {
      last_content = i;
      break;
    }
  }
  const bool has_content = last_content != lines.size();
  const bool have_header =
      has_content && !lines.empty() && util::Trim(lines[0]) == header;
  report.header_ok = have_header;
  if (!have_header && options.mode == Mode::kStrict) return std::nullopt;

  detail::QuarantineWriter quarantine(options);
  std::vector<Record> out;
  for (std::size_t i = have_header ? 1 : 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (util::Trim(line).empty()) continue;
    ++report.lines_total;

    Record rec;
    std::optional<ErrorClass> err =
        i == 0 && !have_header ? std::optional<ErrorClass>(ErrorClass::kBadHeader)
                               : parse(line, rec);
    if (err && *err != ErrorClass::kBadHeader && i == last_content &&
        !ends_with_newline) {
      err = ErrorClass::kTruncatedLine;
    }
    if (!err) {
      ++report.kept;
      out.push_back(std::move(rec));
      continue;
    }

    ++report.rejected;
    ++report.by_class[static_cast<int>(*err)];
    if (report.samples.size() < options.max_samples) {
      report.samples.push_back(RejectedLine{
          static_cast<std::uint64_t>(i) + 1, *err,
          std::string(line.substr(0, detail::kSampleClamp))});
    }
    quarantine.Add(line);
    if (options.mode == Mode::kStrict) {
      quarantine.Finish(report);
      return std::nullopt;
    }
  }
  quarantine.Finish(report);

  if (options.mode == Mode::kTolerant &&
      report.error_rate() > options.max_error_rate) {
    return std::nullopt;  // over budget; the report says how far
  }
  return out;
}

}  // namespace lockdown::ingest
