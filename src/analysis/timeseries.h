// Time-series helpers for the daily figures (1, 2, 4, 5, 8).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "util/time.h"

namespace lockdown::analysis {

/// A value per study day (index 0 = the study's first day).
class DailySeries {
 public:
  explicit DailySeries(int num_days = util::StudyCalendar::NumDays())
      : values_(static_cast<std::size_t>(num_days), 0.0) {}

  /// Adds `value` to the day containing `ts`; out-of-window timestamps are
  /// ignored.
  void Add(util::Timestamp ts, double value) noexcept;

  /// Adds to an explicit day index (ignored when out of range).
  void AddDay(int day, double value) noexcept;

  /// Element-wise sum of another series into this one (sizes must match).
  /// The parallel study folds per-shard partial series in chunk order.
  void Merge(const DailySeries& other);

  [[nodiscard]] double at(int day) const { return values_.at(static_cast<std::size_t>(day)); }
  [[nodiscard]] int num_days() const noexcept { return static_cast<int>(values_.size()); }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Centred moving average over a window of `window` days (Fig. 8 uses a
  /// 3-day moving average). Edges average over the available days.
  [[nodiscard]] DailySeries MovingAverage(int window) const;

  /// Sum over an inclusive day range, clamped to the series.
  [[nodiscard]] double SumRange(int first_day, int last_day) const noexcept;

 private:
  std::vector<double> values_;
};

/// Per-hour-of-week accumulation for Figure 3. Hour 0 is Thursday 00:00,
/// matching the paper's x-axis (Thursday through Wednesday).
class HourOfWeekSeries {
 public:
  static constexpr int kHours = 7 * 24;

  /// Bin index for a timestamp, given the Thursday 00:00 anchoring the week;
  /// nullopt if ts is outside [anchor, anchor + 7 days).
  [[nodiscard]] static std::optional<int> BinOf(util::Timestamp ts,
                                                util::Timestamp week_anchor) noexcept;

  void AddBin(int bin, double value) noexcept;
  [[nodiscard]] double at(int bin) const { return values_.at(static_cast<std::size_t>(bin)); }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Divides every bin by `denom` (no-op when denom <= 0).
  void Scale(double denom) noexcept;

  /// Smallest strictly-positive bin value; 0 if all bins are zero.
  [[nodiscard]] double MinPositive() const noexcept;

 private:
  std::vector<double> values_ = std::vector<double>(kHours, 0.0);
};

}  // namespace lockdown::analysis
