// Summary statistics used throughout the study. The paper relies on medians
// ("the rest of the analysis in this work will rely on median values", §4)
// and box-and-whiskers summaries whose whiskers span the 1st to 95th
// percentile (Figs. 6 and 7).
#pragma once

#include <span>
#include <vector>

namespace lockdown::analysis {

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double Mean(std::span<const double> xs) noexcept;

/// Percentile in [0, 100] with linear interpolation between order statistics
/// (the common "linear" / type-7 definition). 0 for empty input. The input
/// span is copied; use PercentileInPlace for repeated queries.
[[nodiscard]] double Percentile(std::span<const double> xs, double pct);

/// Percentile over a mutable buffer the caller allows to be reordered.
[[nodiscard]] double PercentileInPlace(std::span<double> xs, double pct) noexcept;

/// Median (50th percentile).
[[nodiscard]] double Median(std::span<const double> xs);

/// Box-and-whiskers summary matching the paper's figures: whiskers p1..p95,
/// box Q1..Q3, plus p99 (discussed in the TikTok analysis).
struct BoxStats {
  std::size_t n = 0;
  double p1 = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
};

[[nodiscard]] BoxStats ComputeBoxStats(std::vector<double> xs);

/// Cosine similarity of two equal-length vectors; 0 if either is all-zero.
/// Used to compare diurnal shapes (the Feldmann et al. weekday-vs-weekend
/// convergence question the paper contrasts itself against).
[[nodiscard]] double CosineSimilarity(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace lockdown::analysis
