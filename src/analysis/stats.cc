#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace lockdown::analysis {

double Mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double PercentileInPlace(std::span<double> xs, double pct) noexcept {
  if (xs.empty()) return 0.0;
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(lo), xs.end());
  const double v_lo = xs[lo];
  if (frac == 0.0 || lo + 1 >= xs.size()) return v_lo;
  const double v_hi =
      *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo) + 1, xs.end());
  return v_lo + frac * (v_hi - v_lo);
}

double Percentile(std::span<const double> xs, double pct) {
  std::vector<double> copy(xs.begin(), xs.end());
  return PercentileInPlace(copy, pct);
}

double Median(std::span<const double> xs) { return Percentile(xs, 50.0); }

BoxStats ComputeBoxStats(std::vector<double> xs) {
  BoxStats out;
  out.n = xs.size();
  if (xs.empty()) return out;
  out.mean = Mean(xs);
  std::sort(xs.begin(), xs.end());
  const auto at = [&xs](double pct) {
    const double rank = pct / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= xs.size()) return xs[lo];
    return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
  };
  out.p1 = at(1.0);
  out.q1 = at(25.0);
  out.median = at(50.0);
  out.q3 = at(75.0);
  out.p95 = at(95.0);
  out.p99 = at(99.0);
  return out;
}

double CosineSimilarity(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace lockdown::analysis
