#include "analysis/timeseries.h"

#include <algorithm>
#include <stdexcept>

namespace lockdown::analysis {

void DailySeries::Add(util::Timestamp ts, double value) noexcept {
  AddDay(util::StudyCalendar::DayIndex(ts), value);
}

void DailySeries::AddDay(int day, double value) noexcept {
  if (day < 0 || day >= num_days()) return;
  values_[static_cast<std::size_t>(day)] += value;
}

void DailySeries::Merge(const DailySeries& other) {
  if (other.values_.size() != values_.size()) {
    throw std::invalid_argument("DailySeries::Merge: day-count mismatch");
  }
  for (std::size_t d = 0; d < values_.size(); ++d) values_[d] += other.values_[d];
}

DailySeries DailySeries::MovingAverage(int window) const {
  DailySeries out(num_days());
  if (window <= 1) {
    out.values_ = values_;
    return out;
  }
  const int half = window / 2;
  for (int d = 0; d < num_days(); ++d) {
    const int lo = std::max(0, d - half);
    const int hi = std::min(num_days() - 1, d + (window - 1 - half));
    double sum = 0.0;
    for (int i = lo; i <= hi; ++i) sum += values_[static_cast<std::size_t>(i)];
    out.values_[static_cast<std::size_t>(d)] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

double DailySeries::SumRange(int first_day, int last_day) const noexcept {
  const int lo = std::max(0, first_day);
  const int hi = std::min(num_days() - 1, last_day);
  double sum = 0.0;
  for (int d = lo; d <= hi; ++d) sum += values_[static_cast<std::size_t>(d)];
  return sum;
}

std::optional<int> HourOfWeekSeries::BinOf(util::Timestamp ts,
                                           util::Timestamp week_anchor) noexcept {
  const util::Timestamp delta = ts - week_anchor;
  if (delta < 0 || delta >= 7 * util::kSecondsPerDay) return std::nullopt;
  return static_cast<int>(delta / util::kSecondsPerHour);
}

void HourOfWeekSeries::AddBin(int bin, double value) noexcept {
  if (bin < 0 || bin >= kHours) return;
  values_[static_cast<std::size_t>(bin)] += value;
}

void HourOfWeekSeries::Scale(double denom) noexcept {
  if (denom <= 0.0) return;
  for (double& v : values_) v /= denom;
}

double HourOfWeekSeries::MinPositive() const noexcept {
  double best = 0.0;
  for (double v : values_) {
    if (v > 0.0 && (best == 0.0 || v < best)) best = v;
  }
  return best;
}

}  // namespace lockdown::analysis
