// StudyContext: the shared census every analysis starts from.
//
// Both the batch LockdownStudy and the streaming engine (src/stream) answer
// the paper's questions against the same preconditions: every device
// classified, every interned domain tagged with application flags, the
// post-shutdown cohort identified, and the international/domestic split
// derived from February traffic. This class owns exactly that state — O(num
// devices + num domains), independent of flow count — so the streaming
// engine can reuse it without inheriting the batch study's per-figure
// materialisations.
//
// Determinism: construction shards across the caller's thread pool using the
// fixed-chunk decomposition of util/thread_pool.h, with slot-disjoint writes
// or chunk-ordered merges throughout, so the census is bit-identical at any
// thread count.
#pragma once

#include <vector>

#include "apps/nintendo.h"
#include "apps/social.h"
#include "apps/steam.h"
#include "apps/zoom.h"
#include "classify/classifier.h"
#include "core/dataset.h"
#include "geo/intl.h"
#include "util/thread_pool.h"
#include "world/geo_db.h"

namespace lockdown::core {

// Chunk grains for the sharded passes, shared by the batch study and the
// streaming engine. Chunk boundaries depend only on the problem size
// (util/thread_pool.h), so every reduction — always folded in chunk order —
// produces the same bits at any thread count.
inline constexpr std::size_t kDeviceGrain = 64;   // per-device loops (CSR-disjoint)
inline constexpr std::size_t kDayGrain = 8;       // per-day aggregation rows
inline constexpr std::size_t kHourGrain = 24;     // hour-of-week median columns
inline constexpr std::size_t kSessionGrain = 32;  // per-device session merging
inline constexpr std::size_t kFlowGrain = 16384;  // flat flow scans

/// Figure 3 only medians devices with substantive hourly traffic. The floor
/// keeps heartbeat-only devices (IoT pings, idle gadgets) from swamping the
/// median — their per-hour kilobytes say nothing about user behaviour, which
/// is what Fig. 3 tracks. Shared by the batch and streaming engines.
inline constexpr double kMinHourBytes = 1e6;

/// Figure-1 reporting classes (consoles are folded into IoT there).
enum class ReportClass : std::uint8_t {
  kMobile = 0,
  kLaptopDesktop = 1,
  kIot = 2,
  kUnclassified = 3,
};
inline constexpr int kNumReportClasses = 4;

[[nodiscard]] const char* ToString(ReportClass c) noexcept;

/// Maps the classifier's device class onto the figure-1 reporting class.
[[nodiscard]] ReportClass ReportClassOf(classify::DeviceClass c) noexcept;

class StudyContext {
 public:
  /// Per-domain application flags, precomputed over the interned domains.
  struct DomainFlags {
    bool zoom = false;
    bool fb_family = false;
    bool instagram_only = false;
    bool tiktok = false;
    bool steam = false;
    bool nintendo = false;
    bool nintendo_gameplay = false;
  };

  /// §4.2 international / domestic split over the post-shutdown cohort.
  struct PopulationSplit {
    std::vector<bool> international;  ///< per DeviceIndex; unlabeled => domestic
    std::size_t num_international = 0;
    std::size_t num_with_geo = 0;  ///< devices with usable February traffic
  };

  /// Runs the census passes on `pool`. The pool is only borrowed for
  /// construction; the finished context is immutable and thread-safe to read.
  StudyContext(const Dataset& dataset, const world::ServiceCatalog& catalog,
               util::ThreadPool& pool);

  [[nodiscard]] const Dataset& dataset() const noexcept { return *dataset_; }
  [[nodiscard]] const world::ServiceCatalog& catalog() const noexcept {
    return *catalog_;
  }

  [[nodiscard]] std::span<const classify::Classification> classifications()
      const noexcept {
    return classifications_;
  }
  [[nodiscard]] ReportClass report_class(std::size_t device) const noexcept {
    return report_class_[device];
  }
  [[nodiscard]] const DomainFlags& domain_flags(DomainId domain) const noexcept {
    return domain_flags_[domain];
  }

  /// The devices that "remained on campus after the shutdown": any traffic
  /// once online classes begin (3/30). The cohort anchors there rather than
  /// at the stay-at-home order because students kept departing through the
  /// academic break; an earlier anchor would mix departing devices into the
  /// §4.1 within-cohort comparisons.
  [[nodiscard]] const std::vector<DeviceIndex>& post_shutdown() const noexcept {
    return post_shutdown_;
  }
  [[nodiscard]] bool IsPostShutdown(std::size_t device) const noexcept {
    return is_post_shutdown_[device] != 0;
  }

  [[nodiscard]] const PopulationSplit& split() const noexcept { return split_; }

  /// Stay-at-home order day (Fig. 1 trough search starts here).
  [[nodiscard]] int shutdown_day() const noexcept { return shutdown_day_; }
  /// Online-term start day (post-shutdown cohort anchor).
  [[nodiscard]] int post_shutdown_day() const noexcept {
    return post_shutdown_day_;
  }

  [[nodiscard]] bool IsZoomFlow(const Flow& f) const noexcept;

  /// True if the device is a Switch by the §5.3.2 traffic rule (at least
  /// half its observed bytes go to Nintendo domains).
  [[nodiscard]] bool IsSwitchDevice(DeviceIndex device) const;

  [[nodiscard]] const apps::SocialMediaSignatures& social() const noexcept {
    return social_;
  }

  /// Spreads a flow's bytes uniformly over the hours it spans, calling
  /// add(hour_timestamp, bytes_in_hour).
  template <typename Fn>
  static void SpreadOverHours(const Flow& f, Fn&& add) {
    const util::Timestamp start = Dataset::StartOf(f);
    const auto dur = static_cast<util::Timestamp>(f.duration_s);
    const util::Timestamp end = start + std::max<util::Timestamp>(dur, 1);
    const double total = static_cast<double>(f.total_bytes());
    const double span = static_cast<double>(end - start);
    util::Timestamp t = start;
    while (t < end) {
      const util::Timestamp hour_end =
          (t / util::kSecondsPerHour + 1) * util::kSecondsPerHour;
      const util::Timestamp chunk_end = std::min(hour_end, end);
      add(t, total * static_cast<double>(chunk_end - t) / span);
      t = chunk_end;
    }
  }

 private:
  void ComputeSplit(util::ThreadPool& pool);

  const Dataset* dataset_;
  const world::ServiceCatalog* catalog_;
  world::GeoDatabase geo_db_;
  apps::ZoomMatcher zoom_;
  apps::SocialMediaSignatures social_;
  apps::SteamSignature steam_;
  apps::NintendoSignature nintendo_;
  std::vector<classify::Classification> classifications_;
  std::vector<ReportClass> report_class_;
  std::vector<DomainFlags> domain_flags_;  // indexed by DomainId
  std::vector<DeviceIndex> post_shutdown_;
  std::vector<std::uint8_t> is_post_shutdown_;  // per device
  PopulationSplit split_;
  int shutdown_day_ = 0;
  int post_shutdown_day_ = 0;
};

}  // namespace lockdown::core
