// LockdownStudy: every analysis in the paper, computed from a processed
// Dataset. Method names reference the figure or section they reproduce.
//
// The shared census (classification, domain flags, cohort, intl split) lives
// in StudyContext so the streaming engine (src/stream) can reuse it; this
// class adds the batch figure computations, which materialise per-(day,
// device) matrices and therefore scale with the dataset.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "analysis/stats.h"
#include "analysis/timeseries.h"
#include "core/dataset.h"
#include "core/study_context.h"
#include "query/columns.h"
#include "query/kernels.h"
#include "util/thread_pool.h"

namespace lockdown::core {

class LockdownStudy {
 public:
  /// Builds the study: classifies every device, geolocates February traffic
  /// and derives the domestic/international split, and precomputes per-domain
  /// application flags.
  ///
  /// `threads` shards the constructor passes and every figure computation
  /// across a thread pool (0 = LOCKDOWN_THREADS/hardware; see
  /// util::ResolveThreadCount). Work decomposes into fixed chunks that are
  /// reduced in chunk order, so each figure's output is identical at any
  /// thread count (see util/thread_pool.h for the determinism contract).
  LockdownStudy(const Dataset& dataset, const world::ServiceCatalog& catalog,
                int threads = 0);

  // --- Device classification ------------------------------------------------
  [[nodiscard]] std::span<const classify::Classification> classifications() const noexcept {
    return ctx_.classifications();
  }
  [[nodiscard]] static ReportClass GroupOf(classify::DeviceClass c) noexcept {
    return ReportClassOf(c);
  }

  // --- Figure 1: active devices per day by type ------------------------------
  struct ActiveDevicesRow {
    int day = 0;
    std::array<int, kNumReportClasses> by_class{};
    int total = 0;
  };
  [[nodiscard]] std::vector<ActiveDevicesRow> ActiveDevicesPerDay() const;

  // --- Figure 2: mean & median bytes per active device per day by type -------
  struct BytesPerDeviceRow {
    int day = 0;
    std::array<double, kNumReportClasses> mean{};
    std::array<double, kNumReportClasses> median{};
  };
  [[nodiscard]] std::vector<BytesPerDeviceRow> BytesPerDevicePerDay() const;

  // --- §4: post-shutdown users -----------------------------------------------
  /// The devices that "remained on campus after the shutdown": any traffic
  /// once online classes begin (3/30). See StudyContext::post_shutdown for
  /// why the cohort anchors there rather than at the stay-at-home order.
  [[nodiscard]] const std::vector<DeviceIndex>& PostShutdownDevices() const noexcept {
    return ctx_.post_shutdown();
  }

  // --- Figure 3: normalized median per-device volume per hour of week --------
  struct HourOfWeekResult {
    /// One series per plotted week (Thursday-anchored; see
    /// StudyCalendar::kFig3Weeks), already normalized by the minimum
    /// positive hourly value across all weeks.
    std::array<analysis::HourOfWeekSeries, 4> weeks;
    double normalization = 0.0;  ///< the divisor applied
  };
  [[nodiscard]] HourOfWeekResult HourOfWeekVolume() const;

  // --- §4.2: international / domestic split ----------------------------------
  using PopulationSplit = StudyContext::PopulationSplit;
  [[nodiscard]] const PopulationSplit& Split() const noexcept {
    return ctx_.split();
  }

  // --- Figure 4: median daily bytes per device excluding Zoom ----------------
  struct Fig4Row {
    int day = 0;
    double intl_mobile_desktop = 0.0;
    double dom_mobile_desktop = 0.0;
    double intl_unclassified = 0.0;
    double dom_unclassified = 0.0;
  };
  [[nodiscard]] std::vector<Fig4Row> MedianBytesExcludingZoom() const;

  // --- Figure 5: daily aggregate Zoom traffic (post-shutdown users) ----------
  [[nodiscard]] analysis::DailySeries ZoomDailyBytes() const;

  // --- Figure 6: social-media mobile durations per month ----------------------
  struct SocialBox {
    analysis::BoxStats domestic;
    analysis::BoxStats international;
  };
  /// `month` in 2..5 (February..May). Durations are hours per device over the
  /// month, from merged sessions (overlapping-flow bounds), FB/IG
  /// disambiguated by the Instagram-only-domain heuristic.
  [[nodiscard]] SocialBox SocialDurations(apps::SocialApp app, int month) const;

  // --- Figure 7: Steam bytes & connections per device per month ---------------
  struct SteamBox {
    analysis::BoxStats dom_bytes, intl_bytes;
    analysis::BoxStats dom_conns, intl_conns;
  };
  [[nodiscard]] SteamBox SteamUsage(int month) const;

  // --- Figure 8 / §5.3.2: Nintendo Switch ------------------------------------
  /// Daily gameplay bytes (moving-averaged) over Switches active in both
  /// February and May, gameplay domains only.
  [[nodiscard]] analysis::DailySeries SwitchGameplayDaily(int ma_window = 3) const;
  struct SwitchCounts {
    std::size_t active_february = 0;
    std::size_t active_post_shutdown = 0;
    std::size_t new_in_april_may = 0;  ///< first seen on/after April 1
  };
  [[nodiscard]] SwitchCounts CountSwitches() const;

  // --- Extension: work vs. leisure decomposition -------------------------------
  /// Daily bytes by service category for post-shutdown users. Not a paper
  /// figure; quantifies the intro's work/leisure framing ("entertainment
  /// usage increased" / education moved online).
  struct CategoryVolumeRow {
    int day = 0;
    double education = 0.0;       ///< LMS + office/cloud suites
    double video_conferencing = 0.0;
    double streaming = 0.0;       ///< video + music
    double social_media = 0.0;
    double gaming = 0.0;          ///< PC + console
    double messaging = 0.0;
    double other = 0.0;
  };
  [[nodiscard]] std::vector<CategoryVolumeRow> CategoryVolumes() const;

  // --- Extension: diurnal shape comparison --------------------------------------
  /// Hour-of-day volume profiles over a study-day range, split into weekday
  /// and weekend, each normalized to sum to 1. Feldmann et al. observed
  /// pandemic weekdays converging toward weekend shapes; the paper reports
  /// the opposite for this population — this method lets callers test it.
  struct DiurnalShapeResult {
    std::array<double, 24> weekday{};
    std::array<double, 24> weekend{};
  };
  [[nodiscard]] DiurnalShapeResult DiurnalShape(int first_day, int last_day) const;

  // --- §4/§4.1/§4.2 headline statistics ---------------------------------------
  struct Headline {
    int peak_active_devices = 0;
    int trough_active_devices = 0;
    std::size_t post_shutdown_users = 0;
    /// Mean daily traffic of post-shutdown users, Apr+May vs. Feb (0.58 in
    /// the paper).
    double traffic_increase = 0.0;
    /// Mean distinct sites per device per month, Apr+May vs. Feb (0.34).
    double distinct_sites_increase = 0.0;
    std::size_t international_devices = 0;
    double international_share = 0.0;  ///< of post-shutdown users
  };
  [[nodiscard]] Headline HeadlineStats() const;

  [[nodiscard]] const Dataset& dataset() const noexcept { return ctx_.dataset(); }
  [[nodiscard]] const StudyContext& context() const noexcept { return ctx_; }

 private:
  util::ThreadPool pool_;
  StudyContext ctx_;
  /// Columnar projection of the flow array (finalize order, so the CSR
  /// device offsets index it directly); the figure passes feed per-device
  /// and per-chunk slices of these columns through query::Active()'s kernels.
  query::FlowColumns cols_;
  std::vector<std::uint8_t> zoom_mask_;      ///< per flow: IsZoomFlow
  std::vector<std::uint8_t> not_zoom_mask_;  ///< complement of zoom_mask_
};

}  // namespace lockdown::core
