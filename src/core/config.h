// Top-level study configuration.
#pragma once

#include <cstdint>

#include "sim/generator.h"

namespace lockdown::core {

struct StudyConfig {
  /// Simulated campus (population size, seed, study window).
  sim::GeneratorConfig generator;

  /// Visitor filter: minimum distinct active days to retain a device ("we
  /// discard information for devices that appear on the network for fewer
  /// than 14 days", §3).
  int visitor_min_days = 14;

  /// Processing-pipeline parallelism: total execution lanes for the sharded
  /// attribution/mapping passes. 0 defers to LOCKDOWN_THREADS (0/1 there
  /// means serial) and then to the hardware. Any value produces bit-identical
  /// output — see util/thread_pool.h for the determinism contract.
  int threads = 0;

  /// Convenience factory: a smaller campus for tests.
  [[nodiscard]] static StudyConfig Small(int num_students = 120,
                                         std::uint64_t seed = 2020) {
    StudyConfig cfg;
    cfg.generator.population.num_students = num_students;
    cfg.generator.population.seed = seed;
    return cfg;
  }
};

}  // namespace lockdown::core
