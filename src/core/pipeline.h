// The measurement pipeline (paper §3, after DeKoven et al.):
//
//   raw tap traffic --Zeek--> flows
//   flows + DHCP logs -------> per-device (MAC) attribution
//   flows + DNS logs --------> per-server domain attribution
//   MAC/IP -------------------> anonymized; raw data discarded
//   devices seen < 14 days ---> discarded (campus visitors)
//
// Collect() runs the synthetic campus through exactly this sequence and
// returns the processed Dataset. The tap exclusion list (parts of UCSD,
// Google Cloud, Amazon, Azure, Riot, Twitch, Qualys, Apple) is applied at
// ingest, as at the real mirror port. Process() runs the same attribution
// stages over pre-collected inputs — the deployment mode where flows and
// logs arrive from disk (see core/offline.h).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/dataset.h"
#include "dhcp/lease.h"
#include "dns/record.h"
#include "flow/record.h"
#include "logs/ua_log.h"
#include "privacy/anonymizer.h"
#include "world/catalog.h"

namespace lockdown::core {

/// Collection statistics, for tests and reporting.
struct CollectionStats {
  std::uint64_t raw_flows = 0;          ///< flows the assembler produced
  std::uint64_t tap_excluded = 0;       ///< tap events dropped by exclusion list
  std::uint64_t unattributed = 0;       ///< flows with no covering DHCP lease
  std::uint64_t visitor_flows = 0;      ///< flows dropped by the 14-day filter
  std::uint64_t devices_observed = 0;   ///< distinct devices pre-filter
  std::uint64_t devices_retained = 0;   ///< distinct devices post-filter
  std::uint64_t ua_sightings = 0;       ///< cleartext UA observations kept
  // Every UA record lands in exactly one of the three UA counters:
  // ua_sightings + ua_unattributed + ua_visitor_dropped == |ua log|.
  std::uint64_t ua_unattributed = 0;    ///< UA records with no covering lease
  std::uint64_t ua_visitor_dropped = 0; ///< UA records from filtered devices
};

struct CollectionResult {
  Dataset dataset;
  CollectionStats stats;
};

/// Everything the collection infrastructure stores before processing: the
/// flow records plus the three contemporaneous logs.
struct RawInputs {
  std::vector<flow::FlowRecord> flows;
  std::vector<dhcp::Lease> dhcp_log;
  std::vector<dns::Resolution> dns_log;
  std::vector<logs::UaRecord> ua_log;
};

class MeasurementPipeline {
 public:
  /// Runs generation + the full processing pipeline.
  [[nodiscard]] static CollectionResult Collect(
      const StudyConfig& config,
      const world::ServiceCatalog& catalog = world::ServiceCatalog::Default());

  /// Runs only the processing stages (attribution, anonymization, visitor
  /// filtering) over pre-collected inputs. `stats.raw_flows` and
  /// `stats.tap_excluded` reflect the inputs as given.
  ///
  /// `threads` shards the attribution, retention/DNS-mapping, and UA lookup
  /// passes across a thread pool (0 = LOCKDOWN_THREADS/hardware; see
  /// util::ResolveThreadCount). The dataset is assembled by merging the
  /// per-thread shards in chunk order, so device indices, interned-domain
  /// ids, flow order, and every CollectionStats counter are byte-identical
  /// for any thread count.
  [[nodiscard]] static CollectionResult Process(RawInputs inputs,
                                                const privacy::Anonymizer& anonymizer,
                                                int visitor_min_days,
                                                int threads = 0);

  /// The anonymizer a given config uses. Exposed so simulation-side tooling
  /// (accuracy scoring against ground truth) can link pseudonyms; a real
  /// deployment would never persist this key.
  [[nodiscard]] static privacy::Anonymizer MakeAnonymizer(const StudyConfig& config);
};

}  // namespace lockdown::core
