#include "core/offline.h"

#include <cerrno>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "flow/assembler.h"
#include "io/io.h"
#include "flow/conn_log.h"
#include "logs/dhcp_log.h"
#include "logs/dns_log.h"
#include "logs/ua_log.h"
#include "obs/obs.h"
#include "sim/generator.h"

namespace lockdown::core {

namespace {

std::string ReadFileOrThrow(const std::filesystem::path& path) {
  try {
    // The shim keeps ENOENT/EACCES/EIO distinct, so callers and exit codes
    // can still tell a missing export from a failing disk; transient
    // EINTR/EAGAIN storms are absorbed before anything is thrown.
    return io::ReadFileToString(path);
  } catch (const io::IoError& e) {
    throw ingest::IoError(e.path(), e.op().c_str(), e.error_code());
  }
}

/// Writes one log through `body` into an io::File-backed stream: formatting
/// stays streaming (bounded FileStreamBuf buffer), the write path gets the
/// shim's fault injection and retry, and a full disk throws instead of
/// leaving a truncated log that "succeeded".
template <typename Body>
void WriteLogOrThrow(const std::filesystem::path& path, Body&& body) {
  try {
    io::FileStreamBuf buf(io::File::Create(path));
    std::ostream out(&buf);
    out.exceptions(std::ios::badbit);  // surface IoError out of operator<<
    body(out);
    out.flush();
    buf.file().Close();
  } catch (const io::IoError& e) {
    throw ingest::IoError(e.path(), e.op().c_str(), e.error_code());
  }
}

/// Runs one tolerant/strict read and converts a whole-document rejection
/// into the error-budget exception the CLI maps to its own exit code.
template <typename ReadFn>
auto IngestLog(const std::filesystem::path& path,
               const ingest::IngestOptions& options, ingest::IngestReport& report,
               ReadFn&& read) {
  obs::ScopedSpan span("ingest/" + path.filename().string());
  ingest::IngestOptions per_file = options;
  per_file.source = path.filename().string();
  std::string text = ReadFileOrThrow(path);
  if (obs::MetricsEnabled()) {
    obs::GetCounter("ingest/bytes_read", "bytes").Add(text.size());
  }
  auto records = read(std::move(text), per_file, report);
  ingest::RecordReport(report);  // error-path reads still count
  if (!records) {
    std::string why = report.Summary();
    if (!report.header_ok && report.lines_total == 0) {
      why += " (missing or garbled header)";
    }
    throw ingest::BudgetError(
        "malformed " + path.string() + " (" + ingest::ToString(options.mode) +
        " mode, budget " +
        std::to_string(options.mode == ingest::Mode::kTolerant
                           ? options.max_error_rate
                           : 0.0) +
        "): " + why);
  }
  return std::move(*records);
}

}  // namespace

ingest::IngestReport IngestSummary::Total() const {
  ingest::IngestReport total;
  total.Merge(conn);
  total.Merge(dhcp);
  total.Merge(dns);
  total.Merge(ua);
  return total;
}

void ExportLogs(const StudyConfig& config, const std::filesystem::path& dir,
                const world::ServiceCatalog& catalog) {
  OBS_SPAN("ingest/export");
  std::filesystem::create_directories(dir);

  sim::TrafficGenerator generator(config.generator, catalog);
  std::vector<flow::FlowRecord> flows;
  {
    OBS_SPAN("sim/generate");
    flow::Assembler assembler(flow::AssemblerConfig{},
                              [&flows](const flow::FlowRecord& rec) {
                                flows.push_back(rec);
                              });
    generator.Run([&](const flow::TapEvent& ev) {
      const auto svc = catalog.FindByIp(ev.tuple.dst_ip);
      if (svc && catalog.Get(*svc).tap_excluded) return;
      assembler.Ingest(ev);
    });
    assembler.Finish();
  }

  WriteLogOrThrow(dir / LogFiles::kConn, [&](std::ostream& out) {
    flow::WriteConnLog(out, flows);
  });
  WriteLogOrThrow(dir / LogFiles::kDhcp, [&](std::ostream& out) {
    logs::WriteDhcpLog(out, generator.dhcp_log());
  });
  WriteLogOrThrow(dir / LogFiles::kDns, [&](std::ostream& out) {
    logs::WriteDnsLog(out, generator.dns_log());
  });
  WriteLogOrThrow(dir / LogFiles::kUa, [&](std::ostream& out) {
    std::vector<logs::UaRecord> ua;
    ua.reserve(generator.ua_sightings().size());
    for (const sim::UaSighting& s : generator.ua_sightings()) {
      ua.push_back(logs::UaRecord{s.ts, s.client_ip, std::string(s.user_agent)});
    }
    logs::WriteUaLog(out, ua);
  });
}

RawInputs ReadRawInputs(const std::filesystem::path& dir,
                        const ingest::IngestOptions& options,
                        IngestSummary* summary) {
  IngestSummary local;
  IngestSummary& s = summary != nullptr ? *summary : local;
  s = IngestSummary{};

  RawInputs inputs;
  inputs.flows = IngestLog(
      dir / LogFiles::kConn, options, s.conn,
      [](std::string text, const ingest::IngestOptions& o, ingest::IngestReport& r) {
        return flow::ReadConnLog(text, o, r);
      });
  inputs.dhcp_log = IngestLog(
      dir / LogFiles::kDhcp, options, s.dhcp,
      [](std::string text, const ingest::IngestOptions& o, ingest::IngestReport& r) {
        return logs::ReadDhcpLog(text, o, r);
      });
  inputs.dns_log = IngestLog(
      dir / LogFiles::kDns, options, s.dns,
      [](std::string text, const ingest::IngestOptions& o, ingest::IngestReport& r) {
        return logs::ReadDnsLog(text, o, r);
      });
  inputs.ua_log = IngestLog(
      dir / LogFiles::kUa, options, s.ua,
      [](std::string text, const ingest::IngestOptions& o, ingest::IngestReport& r) {
        return logs::ReadUaLog(text, o, r);
      });
  return inputs;
}

RawInputs ReadRawInputs(const std::filesystem::path& dir) {
  return ReadRawInputs(dir, ingest::IngestOptions{}, nullptr);
}

CollectionResult CollectFromLogs(const std::filesystem::path& dir,
                                 const StudyConfig& config,
                                 const ingest::IngestOptions& options,
                                 IngestSummary* summary) {
  return MeasurementPipeline::Process(ReadRawInputs(dir, options, summary),
                                      MeasurementPipeline::MakeAnonymizer(config),
                                      config.visitor_min_days, config.threads);
}

CollectionResult CollectFromLogs(const std::filesystem::path& dir,
                                 const StudyConfig& config) {
  return CollectFromLogs(dir, config, ingest::IngestOptions{}, nullptr);
}

}  // namespace lockdown::core
