#include "core/offline.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "flow/assembler.h"
#include "flow/conn_log.h"
#include "logs/dhcp_log.h"
#include "logs/dns_log.h"
#include "logs/ua_log.h"
#include "sim/generator.h"

namespace lockdown::core {

namespace {

std::string ReadFileOrThrow(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::ofstream OpenForWrite(const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  return out;
}

}  // namespace

void ExportLogs(const StudyConfig& config, const std::filesystem::path& dir,
                const world::ServiceCatalog& catalog) {
  std::filesystem::create_directories(dir);

  sim::TrafficGenerator generator(config.generator, catalog);
  std::vector<flow::FlowRecord> flows;
  flow::Assembler assembler(flow::AssemblerConfig{},
                            [&flows](const flow::FlowRecord& rec) {
                              flows.push_back(rec);
                            });
  generator.Run([&](const flow::TapEvent& ev) {
    const auto svc = catalog.FindByIp(ev.tuple.dst_ip);
    if (svc && catalog.Get(*svc).tap_excluded) return;
    assembler.Ingest(ev);
  });
  assembler.Finish();

  {
    auto out = OpenForWrite(dir / LogFiles::kConn);
    flow::WriteConnLog(out, flows);
  }
  {
    auto out = OpenForWrite(dir / LogFiles::kDhcp);
    logs::WriteDhcpLog(out, generator.dhcp_log());
  }
  {
    auto out = OpenForWrite(dir / LogFiles::kDns);
    logs::WriteDnsLog(out, generator.dns_log());
  }
  {
    std::vector<logs::UaRecord> ua;
    ua.reserve(generator.ua_sightings().size());
    for (const sim::UaSighting& s : generator.ua_sightings()) {
      ua.push_back(logs::UaRecord{s.ts, s.client_ip, std::string(s.user_agent)});
    }
    auto out = OpenForWrite(dir / LogFiles::kUa);
    logs::WriteUaLog(out, ua);
  }
}

RawInputs ReadRawInputs(const std::filesystem::path& dir) {
  RawInputs inputs;
  auto flows = flow::ReadConnLog(ReadFileOrThrow(dir / LogFiles::kConn));
  if (!flows) throw std::runtime_error("malformed conn.log in " + dir.string());
  inputs.flows = std::move(*flows);

  auto dhcp = logs::ReadDhcpLog(ReadFileOrThrow(dir / LogFiles::kDhcp));
  if (!dhcp) throw std::runtime_error("malformed dhcp.log in " + dir.string());
  inputs.dhcp_log = std::move(*dhcp);

  auto dns = logs::ReadDnsLog(ReadFileOrThrow(dir / LogFiles::kDns));
  if (!dns) throw std::runtime_error("malformed dns.log in " + dir.string());
  inputs.dns_log = std::move(*dns);

  auto ua = logs::ReadUaLog(ReadFileOrThrow(dir / LogFiles::kUa));
  if (!ua) throw std::runtime_error("malformed ua.log in " + dir.string());
  inputs.ua_log = std::move(*ua);
  return inputs;
}

CollectionResult CollectFromLogs(const std::filesystem::path& dir,
                                 const StudyConfig& config) {
  return MeasurementPipeline::Process(ReadRawInputs(dir),
                                      MeasurementPipeline::MakeAnonymizer(config),
                                      config.visitor_min_days, config.threads);
}

}  // namespace lockdown::core
