#include "core/study_context.h"

#include "obs/obs.h"

namespace lockdown::core {

using util::StudyCalendar;

const char* ToString(ReportClass c) noexcept {
  switch (c) {
    case ReportClass::kMobile: return "mobile";
    case ReportClass::kLaptopDesktop: return "laptop-desktop";
    case ReportClass::kIot: return "iot";
    case ReportClass::kUnclassified: return "unclassified";
  }
  return "???";
}

ReportClass ReportClassOf(classify::DeviceClass c) noexcept {
  switch (c) {
    case classify::DeviceClass::kMobile: return ReportClass::kMobile;
    case classify::DeviceClass::kLaptopDesktop: return ReportClass::kLaptopDesktop;
    case classify::DeviceClass::kIot:
    case classify::DeviceClass::kGameConsole: return ReportClass::kIot;
    case classify::DeviceClass::kUnknown: return ReportClass::kUnclassified;
  }
  return ReportClass::kUnclassified;
}

StudyContext::StudyContext(const Dataset& dataset,
                           const world::ServiceCatalog& catalog,
                           util::ThreadPool& pool)
    : dataset_(&dataset),
      catalog_(&catalog),
      geo_db_(catalog),
      zoom_(catalog),
      shutdown_day_(StudyCalendar::DayIndex(StudyCalendar::kStayAtHome)),
      post_shutdown_day_(StudyCalendar::DayIndex(StudyCalendar::kBreakEnd)) {
  OBS_SPAN("study/census");
  const std::size_t n = dataset.num_devices();

  // Classify every device. Each slot is written by exactly one chunk.
  const classify::DeviceClassifier classifier =
      classify::DeviceClassifier::Default(catalog);
  classifications_.resize(n);
  report_class_.resize(n);
  pool.ParallelFor(n, kDeviceGrain,
                   [&](std::size_t, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       const auto dev = static_cast<DeviceIndex>(i);
                       classifications_[i] =
                           classifier.Classify(dataset.device(dev).observations);
                       report_class_[i] =
                           ReportClassOf(classifications_[i].device_class);
                     }
                   });

  // Precompute per-domain application flags (slot-disjoint writes).
  domain_flags_.resize(dataset.num_domains());
  pool.ParallelFor(dataset.num_domains(), kDeviceGrain,
                   [&](std::size_t, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       const std::string_view name =
                           dataset.DomainName(static_cast<DomainId>(i));
                       if (name.empty()) continue;
                       DomainFlags& f = domain_flags_[i];
                       f.zoom = zoom_.MatchesDomain(name);
                       f.fb_family = social_.IsFacebookFamily(name);
                       f.instagram_only = social_.IsInstagramOnly(name);
                       f.tiktok = social_.IsTikTok(name);
                       f.steam = steam_.Matches(name);
                       f.nintendo = nintendo_.IsNintendo(name);
                       f.nintendo_gameplay = nintendo_.IsGameplay(name);
                     }
                   });

  // Post-shutdown users: the devices that "remained on campus after the
  // shutdown" (§4). Students kept departing through the academic break, so a
  // device counts only if it still has traffic once online classes begin
  // (3/30) — otherwise the cohort would mix in departing devices and the
  // §4.1 within-cohort comparisons would reflect demographics, not behaviour.
  // The CSR index makes each device's flag independent of every other's.
  is_post_shutdown_.assign(n, 0);
  pool.ParallelFor(n, kDeviceGrain,
                   [&](std::size_t, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       for (const Flow& f :
                            dataset.FlowsOfDevice(static_cast<DeviceIndex>(i))) {
                         if (Dataset::DayOf(f) >= post_shutdown_day_) {
                           is_post_shutdown_[i] = 1;
                           break;
                         }
                       }
                     }
                   });
  for (DeviceIndex i = 0; i < n; ++i) {
    if (is_post_shutdown_[i]) post_shutdown_.push_back(i);
  }

  ComputeSplit(pool);
}

bool StudyContext::IsZoomFlow(const Flow& f) const noexcept {
  if (f.domain != kNoDomain) return domain_flags_[f.domain].zoom;
  return zoom_.MatchesCurrentIp(f.server_ip) ||
         zoom_.MatchesHistoricalIp(f.server_ip);
}

bool StudyContext::IsSwitchDevice(DeviceIndex device) const {
  const classify::DeviceObservations& obs = dataset_->device(device).observations;
  std::uint64_t total = 0;
  std::uint64_t nintendo_bytes = 0;
  for (const auto& [domain, b] : obs.bytes_by_domain) {
    total += b;
    if (nintendo_.IsNintendo(domain)) nintendo_bytes += b;
  }
  return total > 0 && nintendo_bytes * 2 >= total;
}

void StudyContext::ComputeSplit(util::ThreadPool& pool) {
  // §4.2: February traffic of post-shutdown users, bytes-weighted midpoint,
  // CDNs excluded (handled inside the classifier via the geo database).
  // Devices shard by chunk, so the per-shard classifiers hold disjoint keys
  // and each device's accumulation runs in its serial (CSR) flow order.
  const std::size_t n = dataset_->num_devices();
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, kDeviceGrain);
  std::vector<geo::InternationalClassifier> shards(
      num_chunks, geo::InternationalClassifier(geo_db_));
  pool.ParallelFor(n, kDeviceGrain,
                   [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                     geo::InternationalClassifier& intl = shards[chunk];
                     for (std::size_t i = begin; i < end; ++i) {
                       if (!is_post_shutdown_[i]) continue;
                       const auto dev = static_cast<DeviceIndex>(i);
                       // The classifier keys on opaque device ids; the dense
                       // dataset index works as that key directly.
                       for (const Flow& f : dataset_->FlowsOfDevice(dev)) {
                         intl.Observe(privacy::DeviceId{dev}, f.server_ip,
                                      f.total_bytes(), Dataset::StartOf(f));
                       }
                     }
                   });
  geo::InternationalClassifier intl(geo_db_);
  for (std::size_t c = 0; c < num_chunks; ++c) intl.Merge(shards[c]);
  shards.clear();

  // Classify each cohort member; stage verdicts so the vector<bool> and the
  // counters are filled serially in device order.
  enum : std::uint8_t { kNoGeo = 0, kDomestic = 1, kInternational = 2 };
  std::vector<std::uint8_t> verdicts(post_shutdown_.size(), kNoGeo);
  pool.ParallelFor(post_shutdown_.size(), kDeviceGrain,
                   [&](std::size_t, std::size_t begin, std::size_t end) {
                     for (std::size_t k = begin; k < end; ++k) {
                       const auto result =
                           intl.Classify(privacy::DeviceId{post_shutdown_[k]});
                       if (!result) continue;
                       verdicts[k] = result->international ? kInternational
                                                           : kDomestic;
                     }
                   });
  split_.international.assign(n, false);
  for (std::size_t k = 0; k < post_shutdown_.size(); ++k) {
    if (verdicts[k] == kNoGeo) continue;  // no usable Feb traffic -> domestic
    ++split_.num_with_geo;
    if (verdicts[k] == kInternational) {
      split_.international[post_shutdown_[k]] = true;
      ++split_.num_international;
    }
  }
}

}  // namespace lockdown::core
