// The processed dataset: anonymized, attributed, visitor-filtered flow
// records in a compact columnar-ish layout, plus per-device observations for
// classification. This is what remains after the pipeline discards the raw
// data (§3) — every analysis in the paper runs from here.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "classify/observations.h"
#include "net/ipv4.h"
#include "privacy/anonymizer.h"
#include "util/time.h"

namespace lockdown::core {

/// Interned domain id; 0 is reserved for "no domain" (raw-IP traffic).
using DomainId = std::uint32_t;
inline constexpr DomainId kNoDomain = 0;

/// Dense per-dataset device index.
using DeviceIndex = std::uint32_t;

/// One attributed flow. 48 bytes; datasets hold millions.
struct Flow {
  std::uint32_t start_offset_s = 0;  ///< seconds since study start
  float duration_s = 0.0F;
  DeviceIndex device = 0;
  DomainId domain = kNoDomain;
  net::Ipv4Address server_ip;
  std::uint16_t server_port = 0;
  std::uint8_t proto = 6;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes_up + bytes_down;
  }
};

/// A retained device: pseudonymous id plus the observations the classifier
/// is allowed to use.
struct DeviceEntry {
  privacy::DeviceId id;
  classify::DeviceObservations observations;
};

class Dataset {
 public:
  Dataset();

  // --- Construction (used by the pipeline) --------------------------------
  DomainId InternDomain(std::string_view domain);
  DeviceIndex AddDevice(privacy::DeviceId id);
  void AddFlow(const Flow& flow) { flows_.push_back(flow); }
  [[nodiscard]] DeviceEntry& device_mutable(DeviceIndex i) {
    return devices_[i];
  }
  /// Sorts flows by (device, start) and builds the per-device index. Call
  /// once after the last AddFlow.
  void Finalize();

  // --- Queries -------------------------------------------------------------
  [[nodiscard]] std::span<const Flow> flows() const noexcept { return flows_; }
  [[nodiscard]] std::span<const Flow> FlowsOfDevice(DeviceIndex i) const;
  [[nodiscard]] const DeviceEntry& device(DeviceIndex i) const {
    return devices_.at(i);
  }
  [[nodiscard]] std::size_t num_devices() const noexcept { return devices_.size(); }
  [[nodiscard]] std::size_t num_flows() const noexcept { return flows_.size(); }
  [[nodiscard]] std::string_view DomainName(DomainId id) const;
  [[nodiscard]] std::size_t num_domains() const noexcept { return domains_.size(); }

  /// Absolute timestamp of a flow's start.
  [[nodiscard]] static util::Timestamp StartOf(const Flow& f) noexcept {
    return util::StudyCalendar::StartTs() + f.start_offset_s;
  }
  /// Study-day index of a flow.
  [[nodiscard]] static int DayOf(const Flow& f) noexcept {
    return static_cast<int>(f.start_offset_s / util::kSecondsPerDay);
  }

 private:
  std::vector<Flow> flows_;
  std::vector<DeviceEntry> devices_;
  std::vector<std::string> domains_;  // [0] = ""
  std::unordered_map<std::string, DomainId> domain_index_;
  std::vector<std::uint64_t> device_offsets_;  // CSR after Finalize
  bool finalized_ = false;
};

}  // namespace lockdown::core
