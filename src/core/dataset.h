// The processed dataset: anonymized, attributed, visitor-filtered flow
// records in a compact columnar-ish layout, plus per-device observations for
// classification. This is what remains after the pipeline discards the raw
// data (§3) — every analysis in the paper runs from here.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "classify/observations.h"
#include "net/ipv4.h"
#include "privacy/anonymizer.h"
#include "util/time.h"

namespace lockdown::core {

/// Interned domain id; 0 is reserved for "no domain" (raw-IP traffic).
using DomainId = std::uint32_t;
inline constexpr DomainId kNoDomain = 0;

/// Dense per-dataset device index.
using DeviceIndex = std::uint32_t;

/// One attributed flow. 40 bytes; datasets hold millions. The layout is
/// frozen by static_asserts in store/format.h — it is what LDS snapshots
/// mmap directly — so field reordering is a format break (bump
/// store::kFormatVersion).
struct Flow {
  std::uint32_t start_offset_s = 0;  ///< seconds since study start
  float duration_s = 0.0F;
  DeviceIndex device = 0;
  DomainId domain = kNoDomain;
  net::Ipv4Address server_ip;
  std::uint16_t server_port = 0;
  std::uint8_t proto = 6;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes_up + bytes_down;
  }
};

/// A retained device: pseudonymous id plus the observations the classifier
/// is allowed to use.
struct DeviceEntry {
  privacy::DeviceId id;
  classify::DeviceObservations observations;
};

/// Per-day directory over the finalized flow order: for each study day, the
/// contiguous [begin, begin + len) runs of the flow array whose flows start
/// on that day. Flows are (device, start)-sorted, so the day sequence is
/// piecewise non-decreasing and each (device, day) pair is one run (adjacent
/// same-day runs across a device boundary merge). Day-windowed queries walk
/// only these runs instead of the whole flow array; LDS v3 persists the
/// index as the kDayIndex section.
struct DayRunIndex {
  std::vector<std::uint64_t> day_offsets;  ///< CSR into runs; size num_days()+1
  std::vector<std::uint64_t> run_begin;    ///< first flow index of each run
  std::vector<std::uint64_t> run_len;      ///< flows in each run (>= 1)

  [[nodiscard]] int num_days() const noexcept {
    return day_offsets.empty() ? 0 : static_cast<int>(day_offsets.size()) - 1;
  }
  [[nodiscard]] std::size_t num_runs() const noexcept {
    return run_begin.size();
  }

  /// Calls fn(begin, len) for every run whose day is in [first_day,
  /// last_day] (clamped), in day-major flow order.
  template <typename Fn>
  void ForEachRun(int first_day, int last_day, Fn&& fn) const {
    const int lo = first_day < 0 ? 0 : first_day;
    const int hi = last_day >= num_days() ? num_days() - 1 : last_day;
    for (int d = lo; d <= hi; ++d) {
      for (std::uint64_t r = day_offsets[static_cast<std::size_t>(d)];
           r < day_offsets[static_cast<std::size_t>(d) + 1]; ++r) {
        fn(run_begin[r], run_len[r]);
      }
    }
  }
};

class Dataset {
 public:
  Dataset();

  // --- Construction (used by the pipeline) --------------------------------
  DomainId InternDomain(std::string_view domain);
  DeviceIndex AddDevice(privacy::DeviceId id);
  void AddFlow(const Flow& flow) { flows_.push_back(flow); }
  [[nodiscard]] DeviceEntry& device_mutable(DeviceIndex i) {
    return devices_[i];
  }
  /// Sorts flows by (device, start) and builds the per-device index. Call
  /// once after the last AddFlow.
  void Finalize();

  // --- Snapshot restore (used by store::LoadSnapshot) ----------------------
  /// Adopts an externally owned, already-finalized flow array (e.g. an
  /// mmap'd LDS section) without copying. `keepalive` owns the backing
  /// memory and is held for the dataset's lifetime. The flows must already
  /// be in Finalize() order; pair with RestoreDeviceIndex.
  void BorrowFlows(std::span<const Flow> flows,
                   std::shared_ptr<const void> keepalive);
  /// Installs a prebuilt CSR device index (offsets.size() == num_devices+1,
  /// monotone, last == num_flows) and marks the dataset finalized. Throws
  /// std::invalid_argument on an inconsistent index.
  void RestoreDeviceIndex(std::vector<std::uint64_t> offsets);
  /// Installs a prebuilt day-run index (e.g. a decoded LDS kDayIndex
  /// section). Validates structure plus each run's head/tail day against the
  /// flow array; throws std::invalid_argument on inconsistency.
  void RestoreDayRuns(DayRunIndex runs);
  /// Builds the day-run index from the (finalized) flow order. Finalize()
  /// calls this; snapshot loads of pre-v3 files call it as the fallback.
  void RebuildDayRuns();

  // --- Queries -------------------------------------------------------------
  [[nodiscard]] std::span<const Flow> flows() const noexcept {
    return borrowed_flows_.data() != nullptr ? borrowed_flows_
                                             : std::span<const Flow>(flows_);
  }
  /// True when flows() views memory owned elsewhere (zero-copy load).
  [[nodiscard]] bool flows_borrowed() const noexcept {
    return borrowed_flows_.data() != nullptr;
  }
  /// CSR per-device flow offsets (valid after Finalize/RestoreDeviceIndex).
  [[nodiscard]] std::span<const std::uint64_t> device_offsets() const noexcept {
    return device_offsets_;
  }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  /// Valid after Finalize(), RestoreDayRuns() or RebuildDayRuns().
  [[nodiscard]] const DayRunIndex& day_runs() const noexcept { return day_runs_; }
  [[nodiscard]] bool has_day_runs() const noexcept {
    return !day_runs_.day_offsets.empty();
  }
  [[nodiscard]] std::span<const Flow> FlowsOfDevice(DeviceIndex i) const;
  [[nodiscard]] std::span<const std::string> domains() const noexcept {
    return domains_;
  }
  [[nodiscard]] const DeviceEntry& device(DeviceIndex i) const {
    return devices_.at(i);
  }
  [[nodiscard]] std::size_t num_devices() const noexcept { return devices_.size(); }
  [[nodiscard]] std::size_t num_flows() const noexcept { return flows().size(); }
  [[nodiscard]] std::string_view DomainName(DomainId id) const;
  [[nodiscard]] std::size_t num_domains() const noexcept { return domains_.size(); }

  /// Absolute timestamp of a flow's start.
  [[nodiscard]] static util::Timestamp StartOf(const Flow& f) noexcept {
    return util::StudyCalendar::StartTs() + f.start_offset_s;
  }
  /// Study-day index of a flow.
  [[nodiscard]] static int DayOf(const Flow& f) noexcept {
    return static_cast<int>(f.start_offset_s / util::kSecondsPerDay);
  }

 private:
  std::vector<Flow> flows_;
  std::span<const Flow> borrowed_flows_;          ///< set by BorrowFlows
  std::shared_ptr<const void> flow_keepalive_;    ///< owns borrowed memory
  std::vector<DeviceEntry> devices_;
  std::vector<std::string> domains_;  // [0] = ""
  std::unordered_map<std::string, DomainId> domain_index_;
  std::vector<std::uint64_t> device_offsets_;  // CSR after Finalize
  DayRunIndex day_runs_;  // built by Finalize/RebuildDayRuns or restored
  bool finalized_ = false;
};

}  // namespace lockdown::core
