// Offline (two-phase) operation, matching how the real infrastructure runs:
// a collection box writes conn/DHCP/DNS/UA logs continuously, and the
// analysis runs later from those files. ExportLogs plays the collection box;
// CollectFromLogs is the later analysis run.
#pragma once

#include <filesystem>

#include "core/pipeline.h"

namespace lockdown::core {

/// Filenames used inside an export directory.
struct LogFiles {
  static constexpr const char* kConn = "conn.log";
  static constexpr const char* kDhcp = "dhcp.log";
  static constexpr const char* kDns = "dns.log";
  static constexpr const char* kUa = "ua.log";
  /// Optional LDS snapshot of the *processed* dataset (written by
  /// `lockdown_cli snapshot save`, loaded via store::LoadSnapshot). Where it
  /// exists, analyses can skip the TSV logs and the whole re-processing run:
  /// the snapshot is the write-once/analyze-many fast path.
  static constexpr const char* kSnapshot = "dataset.lds";
};

/// Simulates the campus and writes the four collection logs into `dir`
/// (created if needed). The tap exclusion list is applied at capture, as at
/// the real mirror port. Throws std::runtime_error on I/O failure.
void ExportLogs(const StudyConfig& config, const std::filesystem::path& dir,
                const world::ServiceCatalog& catalog = world::ServiceCatalog::Default());

/// Reads the four collection logs from `dir` without processing them.
/// Throws std::runtime_error on missing or malformed files.
[[nodiscard]] RawInputs ReadRawInputs(const std::filesystem::path& dir);

/// Reads the four logs from `dir` and runs the processing pipeline.
/// `config` supplies the anonymization key and visitor threshold (the logs
/// themselves are un-anonymized, exactly like the real inputs). Throws
/// std::runtime_error on missing or malformed files. This is the slow TSV
/// path; when `dir` also holds a LogFiles::kSnapshot, loading that with
/// store::LoadSnapshot yields the identical CollectionResult in
/// milliseconds (see `lockdown_cli analyze`, which picks the fast path
/// automatically).
[[nodiscard]] CollectionResult CollectFromLogs(const std::filesystem::path& dir,
                                               const StudyConfig& config);

}  // namespace lockdown::core
