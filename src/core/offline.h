// Offline (two-phase) operation, matching how the real infrastructure runs:
// a collection box writes conn/DHCP/DNS/UA logs continuously, and the
// analysis runs later from those files. ExportLogs plays the collection box;
// CollectFromLogs is the later analysis run.
//
// Real deployment logs arrive dirty (truncated tails, garbage rows, partial
// rotations), so ingest is parameterized by ingest::IngestOptions: strict
// mode reproduces the historical all-or-nothing behavior, tolerant mode
// recovers at line granularity under an error budget, and every read
// produces per-file ingest::IngestReports aggregated in IngestSummary.
#pragma once

#include <filesystem>

#include "core/pipeline.h"
#include "ingest/ingest.h"

namespace lockdown::core {

/// Filenames used inside an export directory.
struct LogFiles {
  static constexpr const char* kConn = "conn.log";
  static constexpr const char* kDhcp = "dhcp.log";
  static constexpr const char* kDns = "dns.log";
  static constexpr const char* kUa = "ua.log";
  /// Optional LDS snapshot of the *processed* dataset (written by
  /// `lockdown_cli snapshot save`, loaded via store::LoadSnapshot). Where it
  /// exists, analyses can skip the TSV logs and the whole re-processing run:
  /// the snapshot is the write-once/analyze-many fast path.
  static constexpr const char* kSnapshot = "dataset.lds";
};

/// Per-file ingest outcomes of one ReadRawInputs/CollectFromLogs run.
struct IngestSummary {
  ingest::IngestReport conn;
  ingest::IngestReport dhcp;
  ingest::IngestReport dns;
  ingest::IngestReport ua;

  /// Merged totals across the four logs.
  [[nodiscard]] ingest::IngestReport Total() const;
};

/// Simulates the campus and writes the four collection logs into `dir`
/// (created if needed). The tap exclusion list is applied at capture, as at
/// the real mirror port. Throws ingest::IoError (with errno detail) when any
/// log cannot be fully written — a full disk must not yield a truncated log
/// that "succeeded".
void ExportLogs(const StudyConfig& config, const std::filesystem::path& dir,
                const world::ServiceCatalog& catalog = world::ServiceCatalog::Default());

/// Reads the four collection logs from `dir` without processing them.
/// Strict mode (historical behavior): throws on missing or malformed files.
[[nodiscard]] RawInputs ReadRawInputs(const std::filesystem::path& dir);

/// Ingest-parameterized read. Throws ingest::IoError when a file is missing
/// or unreadable (ENOENT vs. mid-stream EIO are distinguished in the
/// message), and ingest::BudgetError when a log is malformed beyond what
/// `options.mode` / `options.max_error_rate` allow. When `summary` is
/// non-null it is always filled for the files read so far, including on the
/// throwing path.
[[nodiscard]] RawInputs ReadRawInputs(const std::filesystem::path& dir,
                                      const ingest::IngestOptions& options,
                                      IngestSummary* summary = nullptr);

/// Reads the four logs from `dir` and runs the processing pipeline.
/// `config` supplies the anonymization key and visitor threshold (the logs
/// themselves are un-anonymized, exactly like the real inputs). This is the
/// slow TSV path; when `dir` also holds a LogFiles::kSnapshot, loading that
/// with store::LoadSnapshot yields the identical CollectionResult in
/// milliseconds (see `lockdown_cli analyze`, which picks the fast path
/// automatically and falls back to this path when the snapshot is corrupt).
[[nodiscard]] CollectionResult CollectFromLogs(const std::filesystem::path& dir,
                                               const StudyConfig& config);

/// Ingest-parameterized variant; error contract as ReadRawInputs above.
[[nodiscard]] CollectionResult CollectFromLogs(const std::filesystem::path& dir,
                                               const StudyConfig& config,
                                               const ingest::IngestOptions& options,
                                               IngestSummary* summary = nullptr);

}  // namespace lockdown::core
