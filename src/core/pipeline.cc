#include "core/pipeline.h"

#include <unordered_map>
#include <vector>

#include "dhcp/normalizer.h"
#include "dns/mapper.h"
#include "flow/assembler.h"
#include "privacy/visitor_filter.h"
#include "sim/generator.h"
#include "util/hash.h"
#include "world/oui_db.h"

namespace lockdown::core {

privacy::Anonymizer MeasurementPipeline::MakeAnonymizer(const StudyConfig& config) {
  // Per-run key derived from the seed so runs are reproducible; a deployment
  // would draw this from a CSPRNG and destroy it after processing.
  const std::uint64_t seed = config.generator.population.seed;
  return privacy::Anonymizer(util::SipHashKey{
      seed * 0x9E3779B97F4A7C15ULL + 0x1234, seed * 0xC2B2AE3D27D4EB4FULL + 0x5678});
}

CollectionResult MeasurementPipeline::Process(RawInputs inputs,
                                              const privacy::Anonymizer& anonymizer,
                                              int visitor_min_days) {
  CollectionResult result;
  CollectionStats& stats = result.stats;
  stats.raw_flows = inputs.flows.size();

  // --- Attribution indexes ---------------------------------------------------
  const dhcp::IpToMacNormalizer normalizer(inputs.dhcp_log);
  const dns::IpToDomainMapper mapper(inputs.dns_log);

  // --- Device attribution + visitor filter -----------------------------------
  privacy::VisitorFilter visitors(visitor_min_days);
  std::vector<std::uint64_t> record_macs(inputs.flows.size(), 0);
  for (std::size_t i = 0; i < inputs.flows.size(); ++i) {
    const flow::FlowRecord& rec = inputs.flows[i];
    const auto mac = normalizer.Lookup(rec.client_ip, rec.start);
    if (!mac) {
      ++stats.unattributed;
      continue;
    }
    record_macs[i] = mac->value();
    visitors.Observe(anonymizer.AnonymizeMac(*mac), rec.start);
  }
  stats.devices_observed = visitors.num_observed();
  stats.devices_retained = visitors.num_retained();

  // --- Build the dataset -------------------------------------------------------
  Dataset& ds = result.dataset;
  std::unordered_map<privacy::DeviceId, DeviceIndex, privacy::DeviceIdHash> index;
  const util::Timestamp study_start = util::StudyCalendar::StartTs();
  for (std::size_t i = 0; i < inputs.flows.size(); ++i) {
    if (record_macs[i] == 0) continue;
    const net::MacAddress mac(record_macs[i]);
    const privacy::DeviceId devid = anonymizer.AnonymizeMac(mac);
    if (!visitors.Retained(devid)) {
      ++stats.visitor_flows;
      continue;
    }
    const flow::FlowRecord& rec = inputs.flows[i];
    auto [it, inserted] = index.try_emplace(devid, 0);
    if (inserted) {
      it->second = ds.AddDevice(devid);
      classify::DeviceObservations& obs = ds.device_mutable(it->second).observations;
      obs.oui = mac.oui();
      obs.locally_administered = world::OuiDatabase::IsLocallyAdministered(mac);
    }
    const DeviceIndex dev = it->second;

    Flow f;
    f.start_offset_s = static_cast<std::uint32_t>(rec.start - study_start);
    f.duration_s = static_cast<float>(rec.duration_s);
    f.device = dev;
    const auto domain = mapper.Lookup(rec.server_ip, rec.start);
    f.domain = domain ? ds.InternDomain(*domain) : kNoDomain;
    f.server_ip = rec.server_ip;
    f.server_port = rec.server_port;
    f.proto = static_cast<std::uint8_t>(rec.proto);
    f.bytes_up = rec.bytes_up;
    f.bytes_down = rec.bytes_down;
    ds.AddFlow(f);

    classify::DeviceObservations& obs = ds.device_mutable(dev).observations;
    obs.total_bytes += f.total_bytes();
    obs.flow_count += 1;
    if (domain) obs.bytes_by_domain[std::string(*domain)] += f.total_bytes();
  }

  // --- User-Agent sightings ------------------------------------------------------
  for (const logs::UaRecord& ua : inputs.ua_log) {
    const auto mac = normalizer.Lookup(ua.client_ip, ua.ts);
    if (!mac) continue;
    const auto it = index.find(anonymizer.AnonymizeMac(*mac));
    if (it == index.end()) continue;
    ds.device_mutable(it->second).observations.AddUserAgent(ua.user_agent);
    ++stats.ua_sightings;
  }

  ds.Finalize();
  return result;
}

CollectionResult MeasurementPipeline::Collect(const StudyConfig& config,
                                              const world::ServiceCatalog& catalog) {
  // --- Stage 1: tap capture + flow extraction ---------------------------------
  sim::TrafficGenerator generator(config.generator, catalog);
  RawInputs inputs;
  std::uint64_t tap_excluded = 0;
  flow::Assembler assembler(flow::AssemblerConfig{},
                            [&inputs](const flow::FlowRecord& rec) {
                              inputs.flows.push_back(rec);
                            });
  generator.Run([&](const flow::TapEvent& ev) {
    // Tap exclusion list (§3): traffic to these networks is never mirrored.
    const auto svc = catalog.FindByIp(ev.tuple.dst_ip);
    if (svc && catalog.Get(*svc).tap_excluded) {
      ++tap_excluded;
      return;
    }
    assembler.Ingest(ev);
  });
  assembler.Finish();

  inputs.dhcp_log = generator.dhcp_log();
  inputs.dns_log = generator.dns_log();
  inputs.ua_log.reserve(generator.ua_sightings().size());
  for (const sim::UaSighting& ua : generator.ua_sightings()) {
    inputs.ua_log.push_back(
        logs::UaRecord{ua.ts, ua.client_ip, std::string(ua.user_agent)});
  }

  // --- Stages 2-5 --------------------------------------------------------------
  CollectionResult result = Process(std::move(inputs), MakeAnonymizer(config),
                                    config.visitor_min_days);
  result.stats.tap_excluded = tap_excluded;
  return result;
}

}  // namespace lockdown::core
