#include "core/pipeline.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dhcp/normalizer.h"
#include "dns/mapper.h"
#include "flow/assembler.h"
#include "obs/obs.h"
#include "privacy/visitor_filter.h"
#include "sim/generator.h"
#include "util/hash.h"
#include "util/thread_pool.h"
#include "world/oui_db.h"

namespace lockdown::core {
namespace {

// Shard size for the parallel passes. Chunk boundaries depend only on the
// input length (util/thread_pool.h), never on the thread count, so the
// chunk-ordered merges below give byte-identical results at any parallelism.
constexpr std::size_t kFlowGrain = 16384;

// Per-flow outcome of the retention/mapping pass (pass 2).
enum Disposition : std::uint8_t {
  kDrop = 0,        // no covering DHCP lease
  kVisitor = 1,     // attributed, but the device failed the 14-day filter
  kKeep = 2,        // retained, server IP never resolved in the DNS log
  kKeepDomain = 3,  // retained, with an attributed domain
};

// Counters summarizing a finished Process call; values mirror the
// CollectionStats the caller already gets, so --metrics-out sees them too.
void RecordPipelineStats(const CollectionStats& stats,
                         std::uint64_t kept_flows) {
  if (!obs::MetricsEnabled()) return;
  obs::GetCounter("pipeline/raw_flows", "flows").Add(stats.raw_flows);
  obs::GetCounter("pipeline/unattributed_flows", "flows").Add(stats.unattributed);
  obs::GetCounter("pipeline/visitor_flows", "flows").Add(stats.visitor_flows);
  obs::GetCounter("pipeline/kept_flows", "flows").Add(kept_flows);
  obs::GetCounter("pipeline/devices_observed", "devices")
      .Add(stats.devices_observed);
  obs::GetCounter("pipeline/devices_retained", "devices")
      .Add(stats.devices_retained);
  obs::GetCounter("pipeline/ua_sightings", "records").Add(stats.ua_sightings);
}

}  // namespace

privacy::Anonymizer MeasurementPipeline::MakeAnonymizer(const StudyConfig& config) {
  // Per-run key derived from the seed so runs are reproducible; a deployment
  // would draw this from a CSPRNG and destroy it after processing.
  const std::uint64_t seed = config.generator.population.seed;
  return privacy::Anonymizer(util::SipHashKey{
      seed * 0x9E3779B97F4A7C15ULL + 0x1234, seed * 0xC2B2AE3D27D4EB4FULL + 0x5678});
}

CollectionResult MeasurementPipeline::Process(RawInputs inputs,
                                              const privacy::Anonymizer& anonymizer,
                                              int visitor_min_days,
                                              int threads) {
  OBS_SPAN("pipeline/process");
  CollectionResult result;
  CollectionStats& stats = result.stats;
  const std::size_t n = inputs.flows.size();
  stats.raw_flows = n;

  // --- Attribution indexes ---------------------------------------------------
  const dhcp::IpToMacNormalizer normalizer(inputs.dhcp_log);
  const dns::IpToDomainMapper mapper(inputs.dns_log);

  const util::ThreadPool pool(util::ResolveThreadCount(threads));
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, kFlowGrain);

  // --- Pass 1 (sharded): device attribution + visitor observation -------------
  // Each chunk runs its DHCP lookups and accumulates into thread-local shards
  // (a VisitorFilter and an unattributed counter); per-flow results land in
  // disjoint slots of the shared arrays. Shards merge in chunk order below —
  // day sets union order-independently, so the merged filter reproduces the
  // serial scan exactly.
  std::vector<std::uint64_t> record_macs(n, 0);
  std::vector<privacy::DeviceId> device_ids(n);
  std::vector<privacy::VisitorFilter> shard_visitors(
      num_chunks, privacy::VisitorFilter(visitor_min_days));
  std::vector<std::uint64_t> shard_unattributed(num_chunks, 0);
  privacy::VisitorFilter visitors(visitor_min_days);
  {
    OBS_SPAN("pipeline/pass1_attribution");
    pool.ParallelFor(n, kFlowGrain,
                     [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                       privacy::VisitorFilter& shard = shard_visitors[chunk];
                       for (std::size_t i = begin; i < end; ++i) {
                         const flow::FlowRecord& rec = inputs.flows[i];
                         const auto mac = normalizer.Lookup(rec.client_ip, rec.start);
                         if (!mac) {
                           ++shard_unattributed[chunk];
                           continue;
                         }
                         record_macs[i] = mac->value();
                         device_ids[i] = anonymizer.AnonymizeMac(*mac);
                         shard.Observe(device_ids[i], rec.start);
                       }
                     });
    for (std::size_t c = 0; c < num_chunks; ++c) {
      stats.unattributed += shard_unattributed[c];
      visitors.Merge(shard_visitors[c]);
    }
    shard_visitors.clear();
  }
  stats.devices_observed = visitors.num_observed();
  stats.devices_retained = visitors.num_retained();

  // --- Pass 2 (sharded): retention check + DNS mapping -------------------------
  // Reads the now-frozen visitor filter; writes disjoint per-flow slots. The
  // domain views point into inputs.dns_log, which outlives this function's
  // use of them.
  std::vector<std::uint8_t> disposition(n, kDrop);
  std::vector<std::string_view> domains(n);
  {
    OBS_SPAN("pipeline/pass2_retention_dns");
    pool.ParallelFor(n, kFlowGrain,
                     [&](std::size_t, std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         if (record_macs[i] == 0) continue;
                         if (!visitors.Retained(device_ids[i])) {
                           disposition[i] = kVisitor;
                           continue;
                         }
                         const flow::FlowRecord& rec = inputs.flows[i];
                         const auto domain = mapper.Lookup(rec.server_ip, rec.start);
                         if (domain) {
                           disposition[i] = kKeepDomain;
                           domains[i] = *domain;
                         } else {
                           disposition[i] = kKeep;
                         }
                       }
                     });
  }

  // --- Pass 3 (serial merge): assemble the dataset in flow order ---------------
  // Device indices and interned-domain ids are assigned in first-appearance
  // order over the original flow sequence — the merge order is the chunk
  // order, which is the input order, so the dataset is byte-identical to a
  // serial build.
  Dataset& ds = result.dataset;
  std::unordered_map<privacy::DeviceId, DeviceIndex, privacy::DeviceIdHash> index;
  const util::Timestamp study_start = util::StudyCalendar::StartTs();
  {
    OBS_SPAN("pipeline/pass3_assemble");
    for (std::size_t i = 0; i < n; ++i) {
      if (disposition[i] == kDrop) continue;
      if (disposition[i] == kVisitor) {
        ++stats.visitor_flows;
        continue;
      }
      const net::MacAddress mac(record_macs[i]);
      const flow::FlowRecord& rec = inputs.flows[i];
      auto [it, inserted] = index.try_emplace(device_ids[i], 0);
      if (inserted) {
        it->second = ds.AddDevice(device_ids[i]);
        classify::DeviceObservations& obs = ds.device_mutable(it->second).observations;
        obs.oui = mac.oui();
        obs.locally_administered = world::OuiDatabase::IsLocallyAdministered(mac);
      }
      const DeviceIndex dev = it->second;

      Flow f;
      f.start_offset_s = static_cast<std::uint32_t>(rec.start - study_start);
      f.duration_s = static_cast<float>(rec.duration_s);
      f.device = dev;
      f.domain = disposition[i] == kKeepDomain ? ds.InternDomain(domains[i]) : kNoDomain;
      f.server_ip = rec.server_ip;
      f.server_port = rec.server_port;
      f.proto = static_cast<std::uint8_t>(rec.proto);
      f.bytes_up = rec.bytes_up;
      f.bytes_down = rec.bytes_down;
      ds.AddFlow(f);

      classify::DeviceObservations& obs = ds.device_mutable(dev).observations;
      obs.total_bytes += f.total_bytes();
      obs.flow_count += 1;
      if (disposition[i] == kKeepDomain) {
        obs.bytes_by_domain[std::string(domains[i])] += f.total_bytes();
      }
    }
  }

  // --- User-Agent sightings ----------------------------------------------------
  // The lookups (DHCP scan + SipHash) shard like pass 1; the accounting fold
  // stays serial so AddUserAgent's first-seen dedup matches log order. Every
  // record lands in exactly one counter: sightings, unattributed (no covering
  // lease), or visitor_dropped (attributed to a device the filter discarded).
  {
    OBS_SPAN("pipeline/ua_sightings");
    const std::size_t num_ua = inputs.ua_log.size();
    std::vector<privacy::DeviceId> ua_ids(num_ua);
    std::vector<std::uint8_t> ua_attributed(num_ua, 0);
    pool.ParallelFor(num_ua, kFlowGrain,
                     [&](std::size_t, std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         const logs::UaRecord& ua = inputs.ua_log[i];
                         const auto mac = normalizer.Lookup(ua.client_ip, ua.ts);
                         if (!mac) continue;
                         ua_attributed[i] = 1;
                         ua_ids[i] = anonymizer.AnonymizeMac(*mac);
                       }
                     });
    for (std::size_t i = 0; i < num_ua; ++i) {
      if (!ua_attributed[i]) {
        ++stats.ua_unattributed;
        continue;
      }
      const auto it = index.find(ua_ids[i]);
      if (it == index.end()) {
        ++stats.ua_visitor_dropped;
        continue;
      }
      ds.device_mutable(it->second).observations.AddUserAgent(
          inputs.ua_log[i].user_agent);
      ++stats.ua_sightings;
    }
  }

  ds.Finalize();
  RecordPipelineStats(stats, ds.num_flows());
  return result;
}

CollectionResult MeasurementPipeline::Collect(const StudyConfig& config,
                                              const world::ServiceCatalog& catalog) {
  OBS_SPAN("pipeline/collect");
  // --- Stage 1: tap capture + flow extraction ---------------------------------
  sim::TrafficGenerator generator(config.generator, catalog);
  RawInputs inputs;
  std::uint64_t tap_excluded = 0;
  {
    OBS_SPAN("sim/generate");
    flow::Assembler assembler(flow::AssemblerConfig{},
                              [&inputs](const flow::FlowRecord& rec) {
                                inputs.flows.push_back(rec);
                              });
    generator.Run([&](const flow::TapEvent& ev) {
      // Tap exclusion list (§3): traffic to these networks is never mirrored.
      const auto svc = catalog.FindByIp(ev.tuple.dst_ip);
      if (svc && catalog.Get(*svc).tap_excluded) {
        ++tap_excluded;
        return;
      }
      assembler.Ingest(ev);
    });
    assembler.Finish();
  }

  inputs.dhcp_log = generator.dhcp_log();
  inputs.dns_log = generator.dns_log();
  inputs.ua_log.reserve(generator.ua_sightings().size());
  for (const sim::UaSighting& ua : generator.ua_sightings()) {
    inputs.ua_log.push_back(
        logs::UaRecord{ua.ts, ua.client_ip, std::string(ua.user_agent)});
  }
  if (obs::MetricsEnabled()) {
    obs::GetCounter("sim/tap_excluded", "events").Add(tap_excluded);
  }

  // --- Stages 2-5 --------------------------------------------------------------
  CollectionResult result = Process(std::move(inputs), MakeAnonymizer(config),
                                    config.visitor_min_days, config.threads);
  result.stats.tap_excluded = tap_excluded;
  return result;
}

}  // namespace lockdown::core
