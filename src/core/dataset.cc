#include "core/dataset.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lockdown::core {

Dataset::Dataset() {
  domains_.emplace_back("");  // kNoDomain
}

DomainId Dataset::InternDomain(std::string_view domain) {
  if (domain.empty()) return kNoDomain;
  const auto it = domain_index_.find(std::string(domain));
  if (it != domain_index_.end()) return it->second;
  const auto id = static_cast<DomainId>(domains_.size());
  domains_.emplace_back(domain);
  domain_index_.emplace(domains_.back(), id);
  return id;
}

DeviceIndex Dataset::AddDevice(privacy::DeviceId id) {
  const auto index = static_cast<DeviceIndex>(devices_.size());
  devices_.push_back(DeviceEntry{id, {}});
  return index;
}

void Dataset::Finalize() {
  if (flows_borrowed()) {
    throw std::logic_error("Dataset::Finalize on borrowed flows (already final)");
  }
  // stable_sort: ties (same device, same start second) keep insertion order,
  // giving one canonical flow order regardless of libstdc++ sort internals —
  // the parallel-equivalence tests compare datasets byte for byte.
  std::stable_sort(flows_.begin(), flows_.end(), [](const Flow& a, const Flow& b) {
    if (a.device != b.device) return a.device < b.device;
    return a.start_offset_s < b.start_offset_s;
  });
  device_offsets_.assign(devices_.size() + 1, 0);
  for (const Flow& f : flows_) ++device_offsets_[f.device + 1];
  for (std::size_t i = 1; i < device_offsets_.size(); ++i) {
    device_offsets_[i] += device_offsets_[i - 1];
  }
  finalized_ = true;
  RebuildDayRuns();
}

void Dataset::RebuildDayRuns() {
  const std::span<const Flow> fl = flows();
  day_runs_ = DayRunIndex{};
  // Pass 1: cut the flow array into maximal consecutive same-day runs.
  std::vector<std::uint32_t> run_day;
  std::uint32_t max_day = 0;
  std::size_t i = 0;
  while (i < fl.size()) {
    const std::uint32_t day = fl[i].start_offset_s / util::kSecondsPerDay;
    std::size_t j = i + 1;
    while (j < fl.size() &&
           fl[j].start_offset_s / util::kSecondsPerDay == day) {
      ++j;
    }
    run_day.push_back(day);
    day_runs_.run_begin.push_back(i);
    day_runs_.run_len.push_back(j - i);
    max_day = std::max(max_day, day);
    i = j;
  }
  // Pass 2: CSR by day. Runs land in flow order, which within a day is
  // ascending-begin order (begins ascend globally).
  const std::size_t num_days = fl.empty() ? 0 : static_cast<std::size_t>(max_day) + 1;
  day_runs_.day_offsets.assign(num_days + 1, 0);
  for (const std::uint32_t d : run_day) ++day_runs_.day_offsets[d + 1];
  for (std::size_t d = 1; d < day_runs_.day_offsets.size(); ++d) {
    day_runs_.day_offsets[d] += day_runs_.day_offsets[d - 1];
  }
  std::vector<std::uint64_t> begin_sorted(run_day.size());
  std::vector<std::uint64_t> len_sorted(run_day.size());
  std::vector<std::uint64_t> cursor(day_runs_.day_offsets.begin(),
                                    day_runs_.day_offsets.end());
  for (std::size_t r = 0; r < run_day.size(); ++r) {
    const std::uint64_t slot = cursor[run_day[r]]++;
    begin_sorted[slot] = day_runs_.run_begin[r];
    len_sorted[slot] = day_runs_.run_len[r];
  }
  day_runs_.run_begin = std::move(begin_sorted);
  day_runs_.run_len = std::move(len_sorted);
}

void Dataset::RestoreDayRuns(DayRunIndex runs) {
  const std::span<const Flow> fl = flows();
  const auto bad = [](const char* what) {
    throw std::invalid_argument(std::string("Dataset::RestoreDayRuns: ") + what);
  };
  if (runs.day_offsets.empty() || runs.day_offsets.front() != 0 ||
      runs.day_offsets.back() != runs.run_begin.size() ||
      runs.run_begin.size() != runs.run_len.size() ||
      !std::is_sorted(runs.day_offsets.begin(), runs.day_offsets.end())) {
    bad("inconsistent structure");
  }
  std::uint64_t covered = 0;
  for (int d = 0; d < runs.num_days(); ++d) {
    for (std::uint64_t r = runs.day_offsets[static_cast<std::size_t>(d)];
         r < runs.day_offsets[static_cast<std::size_t>(d) + 1]; ++r) {
      const std::uint64_t begin = runs.run_begin[r];
      const std::uint64_t len = runs.run_len[r];
      if (len == 0 || begin > fl.size() || len > fl.size() - begin) {
        bad("run out of bounds");
      }
      // O(1) spot check per run; the interior is implied by sortedness and
      // covered in full by store::Reader::VerifyInvariants.
      const auto day_of = [&](std::uint64_t k) {
        return fl[static_cast<std::size_t>(k)].start_offset_s /
               util::kSecondsPerDay;
      };
      if (day_of(begin) != static_cast<std::uint32_t>(d) ||
          day_of(begin + len - 1) != static_cast<std::uint32_t>(d)) {
        bad("run day disagrees with flows");
      }
      covered += len;
    }
  }
  if (covered != fl.size()) bad("runs do not cover the flow array");
  day_runs_ = std::move(runs);
}

void Dataset::BorrowFlows(std::span<const Flow> flows,
                          std::shared_ptr<const void> keepalive) {
  flows_.clear();
  flows_.shrink_to_fit();
  borrowed_flows_ = flows;
  flow_keepalive_ = std::move(keepalive);
}

void Dataset::RestoreDeviceIndex(std::vector<std::uint64_t> offsets) {
  if (offsets.size() != devices_.size() + 1 || offsets.front() != 0 ||
      offsets.back() != num_flows() ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    throw std::invalid_argument("Dataset::RestoreDeviceIndex: inconsistent CSR index");
  }
  device_offsets_ = std::move(offsets);
  finalized_ = true;
}

std::span<const Flow> Dataset::FlowsOfDevice(DeviceIndex i) const {
  if (!finalized_) throw std::logic_error("Dataset::FlowsOfDevice before Finalize");
  if (i >= devices_.size()) throw std::out_of_range("FlowsOfDevice: bad index");
  const std::uint64_t begin = device_offsets_[i];
  const std::uint64_t end = device_offsets_[i + 1];
  return flows().subspan(begin, end - begin);
}

std::string_view Dataset::DomainName(DomainId id) const {
  return domains_.at(id);
}

}  // namespace lockdown::core
