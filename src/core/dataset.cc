#include "core/dataset.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lockdown::core {

Dataset::Dataset() {
  domains_.emplace_back("");  // kNoDomain
}

DomainId Dataset::InternDomain(std::string_view domain) {
  if (domain.empty()) return kNoDomain;
  const auto it = domain_index_.find(std::string(domain));
  if (it != domain_index_.end()) return it->second;
  const auto id = static_cast<DomainId>(domains_.size());
  domains_.emplace_back(domain);
  domain_index_.emplace(domains_.back(), id);
  return id;
}

DeviceIndex Dataset::AddDevice(privacy::DeviceId id) {
  const auto index = static_cast<DeviceIndex>(devices_.size());
  devices_.push_back(DeviceEntry{id, {}});
  return index;
}

void Dataset::Finalize() {
  if (flows_borrowed()) {
    throw std::logic_error("Dataset::Finalize on borrowed flows (already final)");
  }
  // stable_sort: ties (same device, same start second) keep insertion order,
  // giving one canonical flow order regardless of libstdc++ sort internals —
  // the parallel-equivalence tests compare datasets byte for byte.
  std::stable_sort(flows_.begin(), flows_.end(), [](const Flow& a, const Flow& b) {
    if (a.device != b.device) return a.device < b.device;
    return a.start_offset_s < b.start_offset_s;
  });
  device_offsets_.assign(devices_.size() + 1, 0);
  for (const Flow& f : flows_) ++device_offsets_[f.device + 1];
  for (std::size_t i = 1; i < device_offsets_.size(); ++i) {
    device_offsets_[i] += device_offsets_[i - 1];
  }
  finalized_ = true;
}

void Dataset::BorrowFlows(std::span<const Flow> flows,
                          std::shared_ptr<const void> keepalive) {
  flows_.clear();
  flows_.shrink_to_fit();
  borrowed_flows_ = flows;
  flow_keepalive_ = std::move(keepalive);
}

void Dataset::RestoreDeviceIndex(std::vector<std::uint64_t> offsets) {
  if (offsets.size() != devices_.size() + 1 || offsets.front() != 0 ||
      offsets.back() != num_flows() ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    throw std::invalid_argument("Dataset::RestoreDeviceIndex: inconsistent CSR index");
  }
  device_offsets_ = std::move(offsets);
  finalized_ = true;
}

std::span<const Flow> Dataset::FlowsOfDevice(DeviceIndex i) const {
  if (!finalized_) throw std::logic_error("Dataset::FlowsOfDevice before Finalize");
  if (i >= devices_.size()) throw std::out_of_range("FlowsOfDevice: bad index");
  const std::uint64_t begin = device_offsets_[i];
  const std::uint64_t end = device_offsets_[i + 1];
  return flows().subspan(begin, end - begin);
}

std::string_view Dataset::DomainName(DomainId id) const {
  return domains_.at(id);
}

}  // namespace lockdown::core
