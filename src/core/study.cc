#include "core/study.h"

// This TU is the figure boundary of DESIGN §5: every ParallelFor here fills
// per-day / per-device slots with floating-point statistics (means, medians,
// hour spreads) computed from the integer accumulators upstream. Per-slot FP
// with a single writer per slot is deterministic, so the integer-only rule
// does not apply — it keeps protecting src/stream and src/query, where
// accumulation crosses flows and must stay integral.
// lockdown-lint: disable-file(LD001)

#include "obs/obs.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace lockdown::core {

using util::StudyCalendar;
using util::Timestamp;

namespace {

constexpr auto kSpd = static_cast<std::uint32_t>(util::kSecondsPerDay);

/// Clamps a timestamp-difference to the u32 start-offset domain, so calendar
/// windows translate into count_less_u32 bounds.
[[nodiscard]] std::uint32_t ClampOffset(std::int64_t v) noexcept {
  if (v < 0) return 0;
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    return std::numeric_limits<std::uint32_t>::max();
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

LockdownStudy::LockdownStudy(const Dataset& dataset,
                             const world::ServiceCatalog& catalog, int threads)
    : pool_(util::ResolveThreadCount(threads)),
      ctx_(dataset, catalog, pool_),
      cols_(query::BuildFlowColumns(dataset.flows(), pool_)) {
  OBS_SPAN("study/build_masks");
  // Per-flow Zoom mask: the domain-signature kernel covers every interned
  // domain; raw-IP flows (domain 0) fall back to the context's IP matcher.
  const std::size_t num_flows = cols_.size();
  zoom_mask_.resize(num_flows);
  not_zoom_mask_.resize(num_flows);
  const query::ByteLut zoom_lut(dataset.num_domains(), [&](std::size_t d) {
    return ctx_.domain_flags(static_cast<DomainId>(d)).zoom;
  });
  const auto flows = dataset.flows();
  const query::KernelTable& kern = query::Active();
  pool_.ParallelFor(
      num_flows, kFlowGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        kern.flag_mask_u8(cols_.domain.data() + begin, end - begin,
                          zoom_lut.data(), zoom_lut.size(),
                          zoom_mask_.data() + begin);
        for (std::size_t i = begin; i < end; ++i) {
          if (cols_.domain[i] == kNoDomain) {
            zoom_mask_[i] = ctx_.IsZoomFlow(flows[i]) ? 1 : 0;
          }
          not_zoom_mask_[i] = zoom_mask_[i] ^ 1;
        }
      });
}

std::vector<LockdownStudy::ActiveDevicesRow> LockdownStudy::ActiveDevicesPerDay()
    const {
  OBS_SPAN("study/fig1_active_devices");
  const Dataset& ds = ctx_.dataset();
  const int days = StudyCalendar::NumDays();
  const auto udays = static_cast<std::uint32_t>(days);
  const std::size_t n = ds.num_devices();
  const auto offsets = ds.device_offsets();
  const query::KernelTable& kern = query::Active();
  // Device-major active matrix: each device scatters its (sorted) timestamp
  // slice into its own row, so the fill shards without write overlap.
  std::vector<std::uint8_t> active(n * static_cast<std::size_t>(days), 0);
  pool_.ParallelFor(
      n, kDeviceGrain, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t dev = begin; dev < end; ++dev) {
          const auto b = static_cast<std::size_t>(offsets[dev]);
          kern.mark_days_u8(cols_.start.data() + b,
                            static_cast<std::size_t>(offsets[dev + 1]) - b,
                            kSpd,
                            active.data() + dev * static_cast<std::size_t>(days),
                            udays);
        }
      });
  std::vector<ActiveDevicesRow> rows(static_cast<std::size_t>(days));
  // Row-disjoint aggregation: each day reads its own stripe, devices in
  // index order (the order the old day-major loop visited them).
  pool_.ParallelFor(static_cast<std::size_t>(days), kDayGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t day = begin; day < end; ++day) {
                        ActiveDevicesRow& row = rows[day];
                        row.day = static_cast<int>(day);
                        for (std::size_t dev = 0; dev < n; ++dev) {
                          if (!active[dev * static_cast<std::size_t>(days) +
                                      day]) {
                            continue;
                          }
                          ++row.by_class[static_cast<std::size_t>(
                              ctx_.report_class(dev))];
                          ++row.total;
                        }
                      }
                    });
  return rows;
}

std::vector<LockdownStudy::BytesPerDeviceRow> LockdownStudy::BytesPerDevicePerDay()
    const {
  OBS_SPAN("study/fig2_bytes_per_device");
  const Dataset& ds = ctx_.dataset();
  const int days = StudyCalendar::NumDays();
  const auto udays = static_cast<std::uint32_t>(days);
  const std::size_t n = ds.num_devices();
  const auto offsets = ds.device_offsets();
  const query::KernelTable& kern = query::Active();
  // Device-major u64 sums; each day-sum stays far below 2^53, so the final
  // double conversion reproduces the old per-flow double accumulation bit
  // for bit.
  std::vector<std::uint64_t> bytes(n * static_cast<std::size_t>(days), 0);
  pool_.ParallelFor(
      n, kDeviceGrain, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t dev = begin; dev < end; ++dev) {
          const auto b = static_cast<std::size_t>(offsets[dev]);
          kern.day_sums_u64(cols_.start.data() + b, cols_.bytes.data() + b,
                            static_cast<std::size_t>(offsets[dev + 1]) - b,
                            kSpd,
                            bytes.data() + dev * static_cast<std::size_t>(days),
                            udays);
        }
      });
  std::vector<BytesPerDeviceRow> rows(static_cast<std::size_t>(days));
  pool_.ParallelFor(
      static_cast<std::size_t>(days), kDayGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::array<std::vector<double>, kNumReportClasses> per_class;
        for (std::size_t day = begin; day < end; ++day) {
          BytesPerDeviceRow& row = rows[day];
          row.day = static_cast<int>(day);
          for (auto& v : per_class) v.clear();
          for (std::size_t dev = 0; dev < n; ++dev) {
            const std::uint64_t v =
                bytes[dev * static_cast<std::size_t>(days) + day];
            if (v == 0) continue;
            per_class[static_cast<std::size_t>(ctx_.report_class(dev))]
                .push_back(static_cast<double>(v));
          }
          for (int c = 0; c < kNumReportClasses; ++c) {
            auto& v = per_class[static_cast<std::size_t>(c)];
            row.mean[static_cast<std::size_t>(c)] = analysis::Mean(v);
            row.median[static_cast<std::size_t>(c)] =
                analysis::PercentileInPlace(v, 50.0);
          }
        }
      });
  return rows;
}

LockdownStudy::HourOfWeekResult LockdownStudy::HourOfWeekVolume() const {
  OBS_SPAN("study/fig3_hour_of_week");
  HourOfWeekResult result;
  const Dataset& ds = ctx_.dataset();
  const std::size_t n = ds.num_devices();
  constexpr int kH = analysis::HourOfWeekSeries::kHours;
  for (std::size_t w = 0; w < 4; ++w) {
    const Timestamp anchor = util::TimestampOf(StudyCalendar::kFig3Weeks[w]);
    // Per (device, hour-of-week) volume for this week; device-major so the
    // fill shards over devices without write overlap.
    std::vector<double> volume(n * static_cast<std::size_t>(kH), 0.0);
    pool_.ParallelFor(
        n, kDeviceGrain, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t dev = begin; dev < end; ++dev) {
            for (const Flow& f :
                 ds.FlowsOfDevice(static_cast<DeviceIndex>(dev))) {
              StudyContext::SpreadOverHours(f, [&](Timestamp t, double b) {
                const auto bin = analysis::HourOfWeekSeries::BinOf(t, anchor);
                if (bin) {
                  volume[dev * static_cast<std::size_t>(kH) +
                         static_cast<std::size_t>(*bin)] += b;
                }
              });
            }
          }
        });
    // Median across devices with substantive traffic in that hour (see
    // kMinHourBytes in study_context.h).
    pool_.ParallelFor(
        static_cast<std::size_t>(kH), kHourGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          std::vector<double> column;
          for (std::size_t h = begin; h < end; ++h) {
            column.clear();
            for (std::size_t dev = 0; dev < n; ++dev) {
              const double v = volume[dev * static_cast<std::size_t>(kH) + h];
              if (v >= kMinHourBytes) column.push_back(v);
            }
            result.weeks[w].AddBin(static_cast<int>(h),
                                   analysis::PercentileInPlace(column, 50.0));
          }
        });
  }
  // "the data is normalized by the minimum volume of traffic across all
  //  weeks" (§4.1).
  double min_positive = 0.0;
  for (const auto& week : result.weeks) {
    const double m = week.MinPositive();
    if (m > 0.0 && (min_positive == 0.0 || m < min_positive)) min_positive = m;
  }
  result.normalization = min_positive;
  for (auto& week : result.weeks) week.Scale(min_positive);
  return result;
}

std::vector<LockdownStudy::Fig4Row> LockdownStudy::MedianBytesExcludingZoom() const {
  OBS_SPAN("study/fig4_population_split");
  const Dataset& ds = ctx_.dataset();
  const int days = StudyCalendar::NumDays();
  const auto udays = static_cast<std::uint32_t>(days);
  const std::size_t n = ds.num_devices();
  const auto offsets = ds.device_offsets();
  const query::KernelTable& kern = query::Active();
  // "we exclude Zoom traffic" (§4.2): the not-Zoom mask gates the masked
  // day-sum kernel over each post-shutdown device's slice.
  std::vector<std::uint64_t> bytes(n * static_cast<std::size_t>(days), 0);
  pool_.ParallelFor(
      n, kDeviceGrain, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t dev = begin; dev < end; ++dev) {
          if (!ctx_.IsPostShutdown(dev)) continue;
          const auto b = static_cast<std::size_t>(offsets[dev]);
          kern.masked_day_sums_u64(
              cols_.start.data() + b, cols_.bytes.data() + b,
              not_zoom_mask_.data() + b,
              static_cast<std::size_t>(offsets[dev + 1]) - b, kSpd,
              bytes.data() + dev * static_cast<std::size_t>(days), udays);
        }
      });
  std::vector<Fig4Row> rows(static_cast<std::size_t>(days));
  pool_.ParallelFor(
      static_cast<std::size_t>(days), kDayGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<double> groups[4];
        for (std::size_t day = begin; day < end; ++day) {
          Fig4Row& row = rows[day];
          row.day = static_cast<int>(day);
          for (auto& g : groups) g.clear();
          for (std::size_t dev = 0; dev < n; ++dev) {
            const std::uint64_t v =
                bytes[dev * static_cast<std::size_t>(days) + day];
            if (v == 0 || !ctx_.IsPostShutdown(dev)) continue;
            const ReportClass rc = ctx_.report_class(dev);
            // "We consider mobile and desktop devices separately from
            //  unclassified devices, and exclude IoT devices here" (Fig. 4
            //  caption).
            int group;
            if (rc == ReportClass::kMobile || rc == ReportClass::kLaptopDesktop) {
              group = ctx_.split().international[dev] ? 0 : 1;
            } else if (rc == ReportClass::kUnclassified) {
              group = ctx_.split().international[dev] ? 2 : 3;
            } else {
              continue;
            }
            groups[group].push_back(static_cast<double>(v));
          }
          row.intl_mobile_desktop = analysis::PercentileInPlace(groups[0], 50.0);
          row.dom_mobile_desktop = analysis::PercentileInPlace(groups[1], 50.0);
          row.intl_unclassified = analysis::PercentileInPlace(groups[2], 50.0);
          row.dom_unclassified = analysis::PercentileInPlace(groups[3], 50.0);
        }
      });
  return rows;
}

analysis::DailySeries LockdownStudy::ZoomDailyBytes() const {
  OBS_SPAN("study/fig5_zoom_daily");
  const Dataset& ds = ctx_.dataset();
  const int days = StudyCalendar::NumDays();
  const auto udays = static_cast<std::uint32_t>(days);
  const std::size_t n = ds.num_devices();
  const auto offsets = ds.device_offsets();
  const query::KernelTable& kern = query::Active();
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, kDeviceGrain);
  // Per-chunk u64 day totals, folded in chunk order below — integer sums
  // make the fold exact, so the series matches the old per-flow double
  // accumulation.
  std::vector<std::vector<std::uint64_t>> shards(num_chunks);
  pool_.ParallelFor(
      n, kDeviceGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::vector<std::uint64_t>& sums = shards[chunk];
        sums.assign(static_cast<std::size_t>(days), 0);
        for (std::size_t dev = begin; dev < end; ++dev) {
          if (!ctx_.IsPostShutdown(dev)) continue;
          const auto b = static_cast<std::size_t>(offsets[dev]);
          kern.masked_day_sums_u64(
              cols_.start.data() + b, cols_.bytes.data() + b,
              zoom_mask_.data() + b,
              static_cast<std::size_t>(offsets[dev + 1]) - b, kSpd,
              sums.data(), udays);
        }
      });
  analysis::DailySeries series;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    for (int d = 0; d < days; ++d) {
      const std::uint64_t v = shards[c][static_cast<std::size_t>(d)];
      if (v != 0) series.AddDay(d, static_cast<double>(v));
    }
  }
  return series;
}

LockdownStudy::SocialBox LockdownStudy::SocialDurations(apps::SocialApp app,
                                                        int month) const {
  OBS_SPAN("study/fig6_social");
  const Dataset& ds = ctx_.dataset();
  const std::vector<DeviceIndex>& cohort = ctx_.post_shutdown();
  const Timestamp month_start = util::TimestampOf(util::CivilDate{2020, month, 1});
  const Timestamp month_end =
      util::TimestampOf(util::CivilDate{2020, month + 1, 1});
  // The month window as start-offset bounds: count_less_u32 over each
  // device's sorted timestamp slice yields [first, last) directly, so the
  // session pass only touches in-window flows.
  const std::uint32_t win_lo = ClampOffset(month_start - StudyCalendar::StartTs());
  const std::uint32_t win_hi = ClampOffset(month_end - StudyCalendar::StartTs());
  const auto offsets = ds.device_offsets();
  const auto flows = ds.flows();
  const query::KernelTable& kern = query::Active();
  // Session merging dominates here, so shard over cohort members; per-device
  // hours land in disjoint slots and fold below in cohort order — the order
  // the serial loop pushed them.
  enum : std::uint8_t { kSkip = 0, kDomestic = 1, kInternational = 2 };
  std::vector<double> hours_of(cohort.size(), 0.0);
  std::vector<std::uint8_t> bucket(cohort.size(), kSkip);
  pool_.ParallelFor(
      cohort.size(), kSessionGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<apps::FlowInterval> intervals;
        for (std::size_t k = begin; k < end; ++k) {
          const DeviceIndex dev = cohort[k];
          // "We analyze only mobile traffic" (§5.2).
          if (ctx_.report_class(dev) != ReportClass::kMobile) continue;
          intervals.clear();
          const auto b = static_cast<std::size_t>(offsets[dev]);
          const std::size_t len = static_cast<std::size_t>(offsets[dev + 1]) - b;
          const std::size_t wb =
              b + kern.count_less_u32(cols_.start.data() + b, len, win_lo);
          const std::size_t we =
              b + kern.count_less_u32(cols_.start.data() + b, len, win_hi);
          for (std::size_t i = wb; i < we; ++i) {
            const Flow& f = flows[i];
            const Timestamp start = Dataset::StartOf(f);
            if (f.domain == kNoDomain) continue;
            const StudyContext::DomainFlags& flags = ctx_.domain_flags(f.domain);
            const bool relevant =
                app == apps::SocialApp::kTikTok ? flags.tiktok : flags.fb_family;
            if (!relevant) continue;
            intervals.push_back(apps::FlowInterval{
                start,
                start + std::max<Timestamp>(static_cast<Timestamp>(f.duration_s), 1),
                f.domain, f.total_bytes()});
          }
          if (intervals.empty()) continue;
          double hours = 0.0;
          for (const apps::Session& session : apps::MergeSessions(intervals)) {
            if (app != apps::SocialApp::kTikTok) {
              const apps::SocialApp resolved = ctx_.social().ClassifySession(
                  session,
                  [&ds](std::uint32_t tag) { return ds.DomainName(tag); });
              if (resolved != app) continue;
            }
            hours += session.duration_s() / 3600.0;
          }
          if (hours <= 0.0) continue;
          hours_of[k] = hours;
          bucket[k] = ctx_.split().international[dev] ? kInternational : kDomestic;
        }
      });
  std::vector<double> dom;
  std::vector<double> intl;
  for (std::size_t k = 0; k < cohort.size(); ++k) {
    if (bucket[k] == kSkip) continue;
    (bucket[k] == kInternational ? intl : dom).push_back(hours_of[k]);
  }
  return SocialBox{analysis::ComputeBoxStats(std::move(dom)),
                   analysis::ComputeBoxStats(std::move(intl))};
}

LockdownStudy::SteamBox LockdownStudy::SteamUsage(int month) const {
  OBS_SPAN("study/fig7_steam");
  const Dataset& ds = ctx_.dataset();
  const Timestamp month_start = util::TimestampOf(util::CivilDate{2020, month, 1});
  const Timestamp month_end =
      util::TimestampOf(util::CivilDate{2020, month + 1, 1});
  const std::uint32_t win_lo = ClampOffset(month_start - StudyCalendar::StartTs());
  const std::uint32_t win_hi = ClampOffset(month_end - StudyCalendar::StartTs());
  const query::ByteLut steam_lut(ds.num_domains(), [&](std::uint32_t d) {
    return d != kNoDomain && ctx_.domain_flags(d).steam;
  });
  const auto offsets = ds.device_offsets();
  const query::KernelTable& kern = query::Active();
  std::vector<double> dom_bytes, intl_bytes, dom_conns, intl_conns;
  const std::size_t n = ds.num_devices();
  std::vector<double> bytes(n, 0.0);
  std::vector<double> conns(n, 0.0);
  pool_.ParallelFor(
      n, kDeviceGrain, [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<std::uint8_t> mask;
        for (std::size_t dev = begin; dev < end; ++dev) {
          const auto b = static_cast<std::size_t>(offsets[dev]);
          const std::size_t len = static_cast<std::size_t>(offsets[dev + 1]) - b;
          const std::size_t wb =
              b + kern.count_less_u32(cols_.start.data() + b, len, win_lo);
          const std::size_t we =
              b + kern.count_less_u32(cols_.start.data() + b, len, win_hi);
          if (wb == we) continue;
          mask.resize(we - wb);
          kern.flag_mask_u8(cols_.domain.data() + wb, we - wb, steam_lut.data(),
                            steam_lut.size(), mask.data());
          const std::size_t hits = kern.count_nonzero_u8(mask.data(), we - wb);
          if (hits == 0) continue;
          bytes[dev] = static_cast<double>(
              kern.masked_sum_u64(cols_.bytes.data() + wb, mask.data(), we - wb));
          conns[dev] = static_cast<double>(hits);
        }
      });
  for (const DeviceIndex dev : ctx_.post_shutdown()) {
    if (conns[dev] <= 0.0) continue;
    if (ctx_.split().international[dev]) {
      intl_bytes.push_back(bytes[dev]);
      intl_conns.push_back(conns[dev]);
    } else {
      dom_bytes.push_back(bytes[dev]);
      dom_conns.push_back(conns[dev]);
    }
  }
  return SteamBox{analysis::ComputeBoxStats(std::move(dom_bytes)),
                  analysis::ComputeBoxStats(std::move(intl_bytes)),
                  analysis::ComputeBoxStats(std::move(dom_conns)),
                  analysis::ComputeBoxStats(std::move(intl_conns))};
}

analysis::DailySeries LockdownStudy::SwitchGameplayDaily(int ma_window) const {
  OBS_SPAN("study/fig8_switch_daily");
  // Switches "active in both February and May" (Fig. 8 caption).
  const Dataset& ds = ctx_.dataset();
  const std::size_t n = ds.num_devices();
  const int feb_end = StudyCalendar::DayIndex(util::CivilDate{2020, 3, 1});
  const int may_start = StudyCalendar::DayIndex(util::CivilDate{2020, 5, 1});
  const std::uint32_t feb_end_off = static_cast<std::uint32_t>(feb_end) * kSpd;
  const std::uint32_t may_start_off = static_cast<std::uint32_t>(may_start) * kSpd;
  const int days = StudyCalendar::NumDays();
  const auto udays = static_cast<std::uint32_t>(days);
  const query::ByteLut gameplay_lut(ds.num_domains(), [&](std::uint32_t d) {
    return d != kNoDomain && ctx_.domain_flags(d).nintendo_gameplay;
  });
  const auto offsets = ds.device_offsets();
  const query::KernelTable& kern = query::Active();
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, kDeviceGrain);
  std::vector<std::vector<std::uint64_t>> shards(num_chunks);
  pool_.ParallelFor(
      n, kDeviceGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::vector<std::uint64_t>& sums = shards[chunk];
        sums.assign(static_cast<std::size_t>(days), 0);
        std::vector<std::uint8_t> mask;
        for (std::size_t dev = begin; dev < end; ++dev) {
          const auto di = static_cast<DeviceIndex>(dev);
          if (!ctx_.IsSwitchDevice(di)) continue;
          const auto b = static_cast<std::size_t>(offsets[dev]);
          const std::size_t len = static_cast<std::size_t>(offsets[dev + 1]) - b;
          if (len == 0) continue;
          // Sorted timestamps turn the activity tests into rank queries:
          // any flow before March 1 / any flow on or after May 1.
          const bool in_feb =
              kern.count_less_u32(cols_.start.data() + b, len, feb_end_off) > 0;
          const bool in_may =
              kern.count_less_u32(cols_.start.data() + b, len, may_start_off) < len;
          if (!in_feb || !in_may) continue;
          mask.resize(len);
          kern.flag_mask_u8(cols_.domain.data() + b, len, gameplay_lut.data(),
                            gameplay_lut.size(), mask.data());
          kern.masked_day_sums_u64(cols_.start.data() + b, cols_.bytes.data() + b,
                                   mask.data(), len, kSpd, sums.data(), udays);
        }
      });
  analysis::DailySeries series;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    for (int d = 0; d < days; ++d) {
      const std::uint64_t v = shards[c][static_cast<std::size_t>(d)];
      if (v != 0) series.AddDay(d, static_cast<double>(v));
    }
  }
  return series.MovingAverage(ma_window);
}

LockdownStudy::SwitchCounts LockdownStudy::CountSwitches() const {
  OBS_SPAN("study/fig8_switch_counts");
  const Dataset& ds = ctx_.dataset();
  const std::size_t n = ds.num_devices();
  const int feb_end = StudyCalendar::DayIndex(util::CivilDate{2020, 3, 1});
  const int april_start = StudyCalendar::DayIndex(util::CivilDate{2020, 4, 1});
  const std::uint32_t feb_end_off = static_cast<std::uint32_t>(feb_end) * kSpd;
  const std::uint32_t post_off =
      static_cast<std::uint32_t>(ctx_.post_shutdown_day()) * kSpd;
  const auto offsets = ds.device_offsets();
  const query::KernelTable& kern = query::Active();
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, kDeviceGrain);
  std::vector<SwitchCounts> shards(num_chunks);
  pool_.ParallelFor(
      n, kDeviceGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        SwitchCounts& counts = shards[chunk];
        for (std::size_t dev = begin; dev < end; ++dev) {
          const auto di = static_cast<DeviceIndex>(dev);
          if (!ctx_.IsSwitchDevice(di)) continue;
          const auto b = static_cast<std::size_t>(offsets[dev]);
          const std::size_t len = static_cast<std::size_t>(offsets[dev + 1]) - b;
          if (len == 0) continue;
          // Within-device flows are sorted by start, so the first flow holds
          // the earliest day and the activity tests are rank queries.
          const bool feb =
              kern.count_less_u32(cols_.start.data() + b, len, feb_end_off) > 0;
          const bool post =
              kern.count_less_u32(cols_.start.data() + b, len, post_off) < len;
          const int first_day = static_cast<int>(cols_.start[b] / kSpd);
          counts.active_february += feb;
          counts.active_post_shutdown += post;
          counts.new_in_april_may += first_day >= april_start;
        }
      });
  SwitchCounts counts;
  for (const SwitchCounts& s : shards) {
    counts.active_february += s.active_february;
    counts.active_post_shutdown += s.active_post_shutdown;
    counts.new_in_april_may += s.new_in_april_may;
  }
  return counts;
}

std::vector<LockdownStudy::CategoryVolumeRow> LockdownStudy::CategoryVolumes()
    const {
  OBS_SPAN("study/categories");
  const Dataset& ds = ctx_.dataset();
  const world::ServiceCatalog& catalog = ctx_.catalog();
  const int days = StudyCalendar::NumDays();
  const std::size_t num_flows = ds.num_flows();
  const std::size_t num_chunks =
      util::ThreadPool::NumChunks(num_flows, kFlowGrain);
  std::vector<std::vector<CategoryVolumeRow>> shards(
      num_chunks, std::vector<CategoryVolumeRow>(static_cast<std::size_t>(days)));
  const auto flows = ds.flows();
  pool_.ParallelFor(
      num_flows, kFlowGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::vector<CategoryVolumeRow>& rows = shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const Flow& f = flows[i];
          if (!ctx_.IsPostShutdown(f.device)) continue;
          const int day = Dataset::DayOf(f);
          if (day < 0 || day >= days) continue;
          CategoryVolumeRow& row = rows[static_cast<std::size_t>(day)];
          const double bytes = static_cast<double>(f.total_bytes());
          const auto svc = catalog.FindByIp(f.server_ip);
          if (!svc) {
            row.other += bytes;
            continue;
          }
          switch (catalog.Get(*svc).category) {
            case world::Category::kEducation:
            case world::Category::kEmailCloud:
              row.education += bytes;
              break;
            case world::Category::kVideoConferencing:
              row.video_conferencing += bytes;
              break;
            case world::Category::kStreaming:
            case world::Category::kMusic:
              row.streaming += bytes;
              break;
            case world::Category::kSocialMedia:
              row.social_media += bytes;
              break;
            case world::Category::kGamingPc:
            case world::Category::kGamingConsole:
              row.gaming += bytes;
              break;
            case world::Category::kMessaging:
              row.messaging += bytes;
              break;
            default:
              row.other += bytes;
              break;
          }
        }
      });
  std::vector<CategoryVolumeRow> rows(static_cast<std::size_t>(days));
  for (int d = 0; d < days; ++d) rows[static_cast<std::size_t>(d)].day = d;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    for (int d = 0; d < days; ++d) {
      CategoryVolumeRow& dst = rows[static_cast<std::size_t>(d)];
      const CategoryVolumeRow& src = shards[c][static_cast<std::size_t>(d)];
      dst.education += src.education;
      dst.video_conferencing += src.video_conferencing;
      dst.streaming += src.streaming;
      dst.social_media += src.social_media;
      dst.gaming += src.gaming;
      dst.messaging += src.messaging;
      dst.other += src.other;
    }
  }
  return rows;
}

LockdownStudy::DiurnalShapeResult LockdownStudy::DiurnalShape(int first_day,
                                                              int last_day) const {
  OBS_SPAN("study/diurnal");
  const Dataset& ds = ctx_.dataset();
  const std::size_t num_flows = ds.num_flows();
  const std::size_t num_chunks =
      util::ThreadPool::NumChunks(num_flows, kFlowGrain);
  std::vector<DiurnalShapeResult> shards(num_chunks);
  const auto flows = ds.flows();
  pool_.ParallelFor(
      num_flows, kFlowGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        DiurnalShapeResult& partial = shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const Flow& f = flows[i];
          const int day = Dataset::DayOf(f);
          if (day < first_day || day > last_day) continue;
          const bool weekend =
              util::IsWeekend(util::WeekdayOf(StudyCalendar::DateAt(day)));
          auto& profile = weekend ? partial.weekend : partial.weekday;
          StudyContext::SpreadOverHours(f, [&profile](Timestamp t, double bytes) {
            profile[static_cast<std::size_t>(util::HourOf(t))] += bytes;
          });
        }
      });
  DiurnalShapeResult result;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    for (std::size_t h = 0; h < 24; ++h) {
      result.weekday[h] += shards[c].weekday[h];
      result.weekend[h] += shards[c].weekend[h];
    }
  }
  for (auto* profile : {&result.weekday, &result.weekend}) {
    double sum = 0.0;
    for (double v : *profile) sum += v;
    if (sum > 0.0) {
      for (double& v : *profile) v /= sum;
    }
  }
  return result;
}

LockdownStudy::Headline LockdownStudy::HeadlineStats() const {
  OBS_SPAN("study/headline");
  Headline h;
  // Peak / trough of total active devices (Fig. 1's 32,019 -> 4,973).
  const auto rows = ActiveDevicesPerDay();
  for (const ActiveDevicesRow& row : rows) {
    h.peak_active_devices = std::max(h.peak_active_devices, row.total);
    if (row.day >= ctx_.shutdown_day() &&
        (h.trough_active_devices == 0 || row.total < h.trough_active_devices)) {
      h.trough_active_devices = row.total;
    }
  }
  h.post_shutdown_users = ctx_.post_shutdown().size();
  h.international_devices = ctx_.split().num_international;
  h.international_share =
      ctx_.post_shutdown().empty()
          ? 0.0
          : static_cast<double>(ctx_.split().num_international) /
                static_cast<double>(ctx_.post_shutdown().size());

  // Traffic increase (post-shutdown users): mean daily bytes Apr+May vs Feb,
  // and distinct sites per device per month. The flow scan shards into
  // per-chunk partial sums and (device, domain) sets; partials fold in chunk
  // order, and set sizes are union-order independent. Byte totals come from
  // masked_range_sum_u64 over a per-chunk post-shutdown device mask; the
  // distinct-site sets stay scalar (hash insertion has no kernel shape).
  const Dataset& ds = ctx_.dataset();
  const int feb_days = 29;
  const int apr_start = StudyCalendar::DayIndex(util::CivilDate{2020, 4, 1});
  const int apr_may_days = 61;
  const int may_start = StudyCalendar::DayIndex(util::CivilDate{2020, 5, 1});
  const std::uint32_t feb_end_off = static_cast<std::uint32_t>(feb_days) * kSpd;
  const std::uint32_t apr_start_off = static_cast<std::uint32_t>(apr_start) * kSpd;
  const query::ByteLut post_lut(ds.num_devices(), [&](std::uint32_t dev) {
    return ctx_.IsPostShutdown(static_cast<DeviceIndex>(dev));
  });
  const query::KernelTable& kern = query::Active();
  struct Partial {
    double feb_bytes = 0.0;
    double apr_may_bytes = 0.0;
    std::unordered_set<std::uint64_t> seen_feb, seen_apr, seen_may;
  };
  const std::size_t num_flows = ds.num_flows();
  const std::size_t num_chunks =
      util::ThreadPool::NumChunks(num_flows, kFlowGrain);
  std::vector<Partial> shards(num_chunks);
  pool_.ParallelFor(
      num_flows, kFlowGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        Partial& p = shards[chunk];
        const std::size_t len = end - begin;
        std::vector<std::uint8_t> mask(len);
        kern.flag_mask_u8(cols_.device.data() + begin, len, post_lut.data(),
                          post_lut.size(), mask.data());
        p.feb_bytes = static_cast<double>(kern.masked_range_sum_u64(
            cols_.start.data() + begin, cols_.bytes.data() + begin, mask.data(),
            len, 0, feb_end_off));
        p.apr_may_bytes = static_cast<double>(kern.masked_range_sum_u64(
            cols_.start.data() + begin, cols_.bytes.data() + begin, mask.data(),
            len, apr_start_off, std::numeric_limits<std::uint32_t>::max()));
        for (std::size_t i = begin; i < end; ++i) {
          if (!mask[i - begin] || cols_.domain[i] == kNoDomain) continue;
          const int day = static_cast<int>(cols_.start[i] / kSpd);
          const std::uint64_t key =
              (static_cast<std::uint64_t>(cols_.device[i]) << 32) |
              cols_.domain[i];
          if (day < feb_days) {
            p.seen_feb.insert(key);
          } else if (day >= may_start) {
            p.seen_may.insert(key);
          } else if (day >= apr_start) {
            p.seen_apr.insert(key);
          }
        }
      });
  double feb_bytes = 0.0;
  double apr_may_bytes = 0.0;
  std::unordered_set<std::uint64_t> seen_feb, seen_apr, seen_may;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    Partial& p = shards[c];
    feb_bytes += p.feb_bytes;
    apr_may_bytes += p.apr_may_bytes;
    seen_feb.merge(p.seen_feb);
    seen_apr.merge(p.seen_apr);
    seen_may.merge(p.seen_may);
  }
  const double feb_daily = feb_bytes / feb_days;
  const double apr_may_daily = apr_may_bytes / apr_may_days;
  h.traffic_increase = feb_daily > 0.0 ? apr_may_daily / feb_daily - 1.0 : 0.0;

  const double sites_feb = static_cast<double>(seen_feb.size());
  const double sites_apr_may =
      (static_cast<double>(seen_apr.size()) + static_cast<double>(seen_may.size())) /
      2.0;
  h.distinct_sites_increase =
      sites_feb > 0.0 ? sites_apr_may / sites_feb - 1.0 : 0.0;
  return h;
}

}  // namespace lockdown::core
