#include "core/study.h"

#include <algorithm>
#include <cmath>

namespace lockdown::core {

using util::StudyCalendar;
using util::Timestamp;

const char* ToString(ReportClass c) noexcept {
  switch (c) {
    case ReportClass::kMobile: return "mobile";
    case ReportClass::kLaptopDesktop: return "laptop-desktop";
    case ReportClass::kIot: return "iot";
    case ReportClass::kUnclassified: return "unclassified";
  }
  return "???";
}

ReportClass LockdownStudy::GroupOf(classify::DeviceClass c) noexcept {
  switch (c) {
    case classify::DeviceClass::kMobile: return ReportClass::kMobile;
    case classify::DeviceClass::kLaptopDesktop: return ReportClass::kLaptopDesktop;
    case classify::DeviceClass::kIot:
    case classify::DeviceClass::kGameConsole: return ReportClass::kIot;
    case classify::DeviceClass::kUnknown: return ReportClass::kUnclassified;
  }
  return ReportClass::kUnclassified;
}

LockdownStudy::LockdownStudy(const Dataset& dataset,
                             const world::ServiceCatalog& catalog)
    : dataset_(&dataset),
      catalog_(&catalog),
      geo_db_(catalog),
      zoom_(catalog),
      shutdown_day_(StudyCalendar::DayIndex(StudyCalendar::kStayAtHome)),
      post_shutdown_day_(StudyCalendar::DayIndex(StudyCalendar::kBreakEnd)) {
  // Classify every device.
  const classify::DeviceClassifier classifier =
      classify::DeviceClassifier::Default(catalog);
  classifications_.reserve(dataset.num_devices());
  report_class_.reserve(dataset.num_devices());
  for (DeviceIndex i = 0; i < dataset.num_devices(); ++i) {
    classifications_.push_back(classifier.Classify(dataset.device(i).observations));
    report_class_.push_back(GroupOf(classifications_.back().device_class));
  }

  // Precompute per-domain application flags.
  domain_flags_.resize(dataset.num_domains());
  for (DomainId d = 0; d < dataset.num_domains(); ++d) {
    const std::string_view name = dataset.DomainName(d);
    if (name.empty()) continue;
    DomainFlags& f = domain_flags_[d];
    f.zoom = zoom_.MatchesDomain(name);
    f.fb_family = social_.IsFacebookFamily(name);
    f.instagram_only = social_.IsInstagramOnly(name);
    f.tiktok = social_.IsTikTok(name);
    f.steam = steam_.Matches(name);
    f.nintendo = nintendo_.IsNintendo(name);
    f.nintendo_gameplay = nintendo_.IsGameplay(name);
  }

  // Post-shutdown users: the devices that "remained on campus after the
  // shutdown" (§4). Students kept departing through the academic break, so a
  // device counts only if it still has traffic once online classes begin
  // (3/30) — otherwise the cohort would mix in departing devices and the
  // §4.1 within-cohort comparisons would reflect demographics, not behaviour.
  is_post_shutdown_.assign(dataset.num_devices(), 0);
  for (const Flow& f : dataset.flows()) {
    if (Dataset::DayOf(f) >= post_shutdown_day_) is_post_shutdown_[f.device] = 1;
  }
  for (DeviceIndex i = 0; i < dataset.num_devices(); ++i) {
    if (is_post_shutdown_[i]) post_shutdown_.push_back(i);
  }

  ComputeSplit();
}

bool LockdownStudy::IsZoomFlow(const Flow& f) const noexcept {
  if (f.domain != kNoDomain) return domain_flags_[f.domain].zoom;
  return zoom_.MatchesCurrentIp(f.server_ip) || zoom_.MatchesHistoricalIp(f.server_ip);
}

template <typename Fn>
void LockdownStudy::SpreadOverHours(const Flow& f, Fn&& add) {
  const Timestamp start = Dataset::StartOf(f);
  const auto dur = static_cast<Timestamp>(f.duration_s);
  const Timestamp end = start + std::max<Timestamp>(dur, 1);
  const double total = static_cast<double>(f.total_bytes());
  const double span = static_cast<double>(end - start);
  Timestamp t = start;
  while (t < end) {
    const Timestamp hour_end =
        (t / util::kSecondsPerHour + 1) * util::kSecondsPerHour;
    const Timestamp chunk_end = std::min(hour_end, end);
    add(t, total * static_cast<double>(chunk_end - t) / span);
    t = chunk_end;
  }
}

void LockdownStudy::ComputeSplit() {
  // §4.2: February traffic of post-shutdown users, bytes-weighted midpoint,
  // CDNs excluded (handled inside the classifier via the geo database).
  geo::InternationalClassifier intl(geo_db_);
  // The classifier keys on opaque device ids; the dense dataset index works
  // as that key directly.
  for (const Flow& f : dataset_->flows()) {
    if (!is_post_shutdown_[f.device]) continue;
    intl.Observe(privacy::DeviceId{f.device}, f.server_ip, f.total_bytes(),
                 Dataset::StartOf(f));
  }
  split_.international.assign(dataset_->num_devices(), false);
  for (const DeviceIndex dev : post_shutdown_) {
    const auto result = intl.Classify(privacy::DeviceId{dev});
    if (!result) continue;  // no usable Feb traffic -> presumed domestic
    ++split_.num_with_geo;
    if (result->international) {
      split_.international[dev] = true;
      ++split_.num_international;
    }
  }
}

std::vector<LockdownStudy::ActiveDevicesRow> LockdownStudy::ActiveDevicesPerDay()
    const {
  const int days = StudyCalendar::NumDays();
  const std::size_t n = dataset_->num_devices();
  std::vector<std::uint8_t> active(static_cast<std::size_t>(days) * n, 0);
  for (const Flow& f : dataset_->flows()) {
    const int day = Dataset::DayOf(f);
    if (day < 0 || day >= days) continue;
    active[static_cast<std::size_t>(day) * n + f.device] = 1;
  }
  std::vector<ActiveDevicesRow> rows(static_cast<std::size_t>(days));
  for (int day = 0; day < days; ++day) {
    ActiveDevicesRow& row = rows[static_cast<std::size_t>(day)];
    row.day = day;
    const std::uint8_t* base = active.data() + static_cast<std::size_t>(day) * n;
    for (std::size_t dev = 0; dev < n; ++dev) {
      if (!base[dev]) continue;
      ++row.by_class[static_cast<std::size_t>(report_class_[dev])];
      ++row.total;
    }
  }
  return rows;
}

std::vector<LockdownStudy::BytesPerDeviceRow> LockdownStudy::BytesPerDevicePerDay()
    const {
  const int days = StudyCalendar::NumDays();
  const std::size_t n = dataset_->num_devices();
  std::vector<double> bytes(static_cast<std::size_t>(days) * n, 0.0);
  for (const Flow& f : dataset_->flows()) {
    const int day = Dataset::DayOf(f);
    if (day < 0 || day >= days) continue;
    bytes[static_cast<std::size_t>(day) * n + f.device] +=
        static_cast<double>(f.total_bytes());
  }
  std::vector<BytesPerDeviceRow> rows(static_cast<std::size_t>(days));
  std::array<std::vector<double>, kNumReportClasses> per_class;
  for (int day = 0; day < days; ++day) {
    BytesPerDeviceRow& row = rows[static_cast<std::size_t>(day)];
    row.day = day;
    for (auto& v : per_class) v.clear();
    const double* base = bytes.data() + static_cast<std::size_t>(day) * n;
    for (std::size_t dev = 0; dev < n; ++dev) {
      if (base[dev] <= 0.0) continue;
      per_class[static_cast<std::size_t>(report_class_[dev])].push_back(base[dev]);
    }
    for (int c = 0; c < kNumReportClasses; ++c) {
      auto& v = per_class[static_cast<std::size_t>(c)];
      row.mean[static_cast<std::size_t>(c)] = analysis::Mean(v);
      row.median[static_cast<std::size_t>(c)] =
          analysis::PercentileInPlace(v, 50.0);
    }
  }
  return rows;
}

LockdownStudy::HourOfWeekResult LockdownStudy::HourOfWeekVolume() const {
  HourOfWeekResult result;
  const std::size_t n = dataset_->num_devices();
  constexpr int kH = analysis::HourOfWeekSeries::kHours;
  for (std::size_t w = 0; w < 4; ++w) {
    const Timestamp anchor = util::TimestampOf(StudyCalendar::kFig3Weeks[w]);
    // Per (device, hour-of-week) volume for this week.
    std::vector<double> volume(n * static_cast<std::size_t>(kH), 0.0);
    for (const Flow& f : dataset_->flows()) {
      SpreadOverHours(f, [&](Timestamp t, double b) {
        const auto bin = analysis::HourOfWeekSeries::BinOf(t, anchor);
        if (bin) {
          volume[f.device * static_cast<std::size_t>(kH) +
                 static_cast<std::size_t>(*bin)] += b;
        }
      });
    }
    // Median across devices with substantive traffic in that hour. The
    // floor keeps heartbeat-only devices (IoT pings, idle gadgets) from
    // swamping the median — their per-hour kilobytes say nothing about user
    // behaviour, which is what Fig. 3 tracks.
    constexpr double kMinHourBytes = 1e6;
    std::vector<double> column;
    for (int h = 0; h < kH; ++h) {
      column.clear();
      for (std::size_t dev = 0; dev < n; ++dev) {
        const double v = volume[dev * static_cast<std::size_t>(kH) +
                                static_cast<std::size_t>(h)];
        if (v >= kMinHourBytes) column.push_back(v);
      }
      result.weeks[w].AddBin(h, analysis::PercentileInPlace(column, 50.0));
    }
  }
  // "the data is normalized by the minimum volume of traffic across all
  //  weeks" (§4.1).
  double min_positive = 0.0;
  for (const auto& week : result.weeks) {
    const double m = week.MinPositive();
    if (m > 0.0 && (min_positive == 0.0 || m < min_positive)) min_positive = m;
  }
  result.normalization = min_positive;
  for (auto& week : result.weeks) week.Scale(min_positive);
  return result;
}

std::vector<LockdownStudy::Fig4Row> LockdownStudy::MedianBytesExcludingZoom() const {
  const int days = StudyCalendar::NumDays();
  const std::size_t n = dataset_->num_devices();
  std::vector<double> bytes(static_cast<std::size_t>(days) * n, 0.0);
  for (const Flow& f : dataset_->flows()) {
    const int day = Dataset::DayOf(f);
    if (day < 0 || day >= days) continue;
    if (!is_post_shutdown_[f.device]) continue;
    if (IsZoomFlow(f)) continue;  // "we exclude Zoom traffic" (§4.2)
    bytes[static_cast<std::size_t>(day) * n + f.device] +=
        static_cast<double>(f.total_bytes());
  }
  std::vector<Fig4Row> rows(static_cast<std::size_t>(days));
  std::vector<double> groups[4];
  for (int day = 0; day < days; ++day) {
    Fig4Row& row = rows[static_cast<std::size_t>(day)];
    row.day = day;
    for (auto& g : groups) g.clear();
    const double* base = bytes.data() + static_cast<std::size_t>(day) * n;
    for (std::size_t dev = 0; dev < n; ++dev) {
      if (base[dev] <= 0.0 || !is_post_shutdown_[dev]) continue;
      const ReportClass rc = report_class_[dev];
      // "We consider mobile and desktop devices separately from unclassified
      //  devices, and exclude IoT devices here" (Fig. 4 caption).
      int group;
      if (rc == ReportClass::kMobile || rc == ReportClass::kLaptopDesktop) {
        group = split_.international[dev] ? 0 : 1;
      } else if (rc == ReportClass::kUnclassified) {
        group = split_.international[dev] ? 2 : 3;
      } else {
        continue;
      }
      groups[group].push_back(base[dev]);
    }
    row.intl_mobile_desktop = analysis::PercentileInPlace(groups[0], 50.0);
    row.dom_mobile_desktop = analysis::PercentileInPlace(groups[1], 50.0);
    row.intl_unclassified = analysis::PercentileInPlace(groups[2], 50.0);
    row.dom_unclassified = analysis::PercentileInPlace(groups[3], 50.0);
  }
  return rows;
}

analysis::DailySeries LockdownStudy::ZoomDailyBytes() const {
  analysis::DailySeries series;
  for (const Flow& f : dataset_->flows()) {
    if (!is_post_shutdown_[f.device]) continue;
    if (!IsZoomFlow(f)) continue;
    series.Add(Dataset::StartOf(f), static_cast<double>(f.total_bytes()));
  }
  return series;
}

LockdownStudy::SocialBox LockdownStudy::SocialDurations(apps::SocialApp app,
                                                        int month) const {
  const Timestamp month_start = util::TimestampOf(util::CivilDate{2020, month, 1});
  const Timestamp month_end =
      util::TimestampOf(util::CivilDate{2020, month + 1, 1});
  std::vector<double> dom;
  std::vector<double> intl;
  std::vector<apps::FlowInterval> intervals;
  for (const DeviceIndex dev : post_shutdown_) {
    // "We analyze only mobile traffic" (§5.2).
    if (report_class_[dev] != ReportClass::kMobile) continue;
    intervals.clear();
    for (const Flow& f : dataset_->FlowsOfDevice(dev)) {
      const Timestamp start = Dataset::StartOf(f);
      if (start < month_start || start >= month_end || f.domain == kNoDomain) {
        continue;
      }
      const DomainFlags& flags = domain_flags_[f.domain];
      const bool relevant =
          app == apps::SocialApp::kTikTok ? flags.tiktok : flags.fb_family;
      if (!relevant) continue;
      intervals.push_back(apps::FlowInterval{
          start, start + std::max<Timestamp>(static_cast<Timestamp>(f.duration_s), 1),
          f.domain, f.total_bytes()});
    }
    if (intervals.empty()) continue;
    double hours = 0.0;
    for (const apps::Session& session : apps::MergeSessions(intervals)) {
      if (app != apps::SocialApp::kTikTok) {
        const apps::SocialApp resolved = social_.ClassifySession(
            session,
            [this](std::uint32_t tag) { return dataset_->DomainName(tag); });
        if (resolved != app) continue;
      }
      hours += session.duration_s() / 3600.0;
    }
    if (hours <= 0.0) continue;
    (split_.international[dev] ? intl : dom).push_back(hours);
  }
  return SocialBox{analysis::ComputeBoxStats(std::move(dom)),
                   analysis::ComputeBoxStats(std::move(intl))};
}

LockdownStudy::SteamBox LockdownStudy::SteamUsage(int month) const {
  const Timestamp month_start = util::TimestampOf(util::CivilDate{2020, month, 1});
  const Timestamp month_end =
      util::TimestampOf(util::CivilDate{2020, month + 1, 1});
  std::vector<double> dom_bytes, intl_bytes, dom_conns, intl_conns;
  const std::size_t n = dataset_->num_devices();
  std::vector<double> bytes(n, 0.0);
  std::vector<double> conns(n, 0.0);
  for (const Flow& f : dataset_->flows()) {
    const Timestamp start = Dataset::StartOf(f);
    if (start < month_start || start >= month_end || f.domain == kNoDomain) continue;
    if (!domain_flags_[f.domain].steam) continue;
    bytes[f.device] += static_cast<double>(f.total_bytes());
    conns[f.device] += 1.0;
  }
  for (const DeviceIndex dev : post_shutdown_) {
    if (conns[dev] <= 0.0) continue;
    if (split_.international[dev]) {
      intl_bytes.push_back(bytes[dev]);
      intl_conns.push_back(conns[dev]);
    } else {
      dom_bytes.push_back(bytes[dev]);
      dom_conns.push_back(conns[dev]);
    }
  }
  return SteamBox{analysis::ComputeBoxStats(std::move(dom_bytes)),
                  analysis::ComputeBoxStats(std::move(intl_bytes)),
                  analysis::ComputeBoxStats(std::move(dom_conns)),
                  analysis::ComputeBoxStats(std::move(intl_conns))};
}

namespace {

/// True if the device is a Switch by the §5.3.2 traffic rule.
bool IsSwitchDevice(const classify::DeviceObservations& obs,
                    const apps::NintendoSignature& nintendo) {
  std::uint64_t total = 0;
  std::uint64_t nintendo_bytes = 0;
  for (const auto& [domain, b] : obs.bytes_by_domain) {
    total += b;
    if (nintendo.IsNintendo(domain)) nintendo_bytes += b;
  }
  return total > 0 && nintendo_bytes * 2 >= total;
}

}  // namespace

analysis::DailySeries LockdownStudy::SwitchGameplayDaily(int ma_window) const {
  // Switches "active in both February and May" (Fig. 8 caption).
  const std::size_t n = dataset_->num_devices();
  std::vector<std::uint8_t> is_switch(n, 0);
  for (DeviceIndex i = 0; i < n; ++i) {
    is_switch[i] = IsSwitchDevice(dataset_->device(i).observations, nintendo_);
  }
  const int feb_end = StudyCalendar::DayIndex(util::CivilDate{2020, 3, 1});
  const int may_start = StudyCalendar::DayIndex(util::CivilDate{2020, 5, 1});
  std::vector<std::uint8_t> in_feb(n, 0), in_may(n, 0);
  for (const Flow& f : dataset_->flows()) {
    if (!is_switch[f.device]) continue;
    const int day = Dataset::DayOf(f);
    if (day < feb_end) in_feb[f.device] = 1;
    if (day >= may_start) in_may[f.device] = 1;
  }
  analysis::DailySeries series;
  for (const Flow& f : dataset_->flows()) {
    if (!is_switch[f.device] || !in_feb[f.device] || !in_may[f.device]) continue;
    if (f.domain == kNoDomain || !domain_flags_[f.domain].nintendo_gameplay) continue;
    series.Add(Dataset::StartOf(f), static_cast<double>(f.total_bytes()));
  }
  return series.MovingAverage(ma_window);
}

LockdownStudy::SwitchCounts LockdownStudy::CountSwitches() const {
  SwitchCounts counts;
  const std::size_t n = dataset_->num_devices();
  const int feb_end = StudyCalendar::DayIndex(util::CivilDate{2020, 3, 1});
  const int april_start = StudyCalendar::DayIndex(util::CivilDate{2020, 4, 1});
  for (DeviceIndex i = 0; i < n; ++i) {
    if (!IsSwitchDevice(dataset_->device(i).observations, nintendo_)) continue;
    const auto flows = dataset_->FlowsOfDevice(i);
    if (flows.empty()) continue;
    int first_day = StudyCalendar::NumDays();
    bool feb = false;
    bool post = false;
    for (const Flow& f : flows) {
      const int day = Dataset::DayOf(f);
      first_day = std::min(first_day, day);
      feb |= day < feb_end;
      post |= day >= post_shutdown_day_;
    }
    counts.active_february += feb;
    counts.active_post_shutdown += post;
    counts.new_in_april_may += first_day >= april_start;
  }
  return counts;
}

std::vector<LockdownStudy::CategoryVolumeRow> LockdownStudy::CategoryVolumes()
    const {
  const int days = StudyCalendar::NumDays();
  std::vector<CategoryVolumeRow> rows(static_cast<std::size_t>(days));
  for (int d = 0; d < days; ++d) rows[static_cast<std::size_t>(d)].day = d;
  for (const Flow& f : dataset_->flows()) {
    if (!is_post_shutdown_[f.device]) continue;
    const int day = Dataset::DayOf(f);
    if (day < 0 || day >= days) continue;
    CategoryVolumeRow& row = rows[static_cast<std::size_t>(day)];
    const double bytes = static_cast<double>(f.total_bytes());
    const auto svc = catalog_->FindByIp(f.server_ip);
    if (!svc) {
      row.other += bytes;
      continue;
    }
    switch (catalog_->Get(*svc).category) {
      case world::Category::kEducation:
      case world::Category::kEmailCloud:
        row.education += bytes;
        break;
      case world::Category::kVideoConferencing:
        row.video_conferencing += bytes;
        break;
      case world::Category::kStreaming:
      case world::Category::kMusic:
        row.streaming += bytes;
        break;
      case world::Category::kSocialMedia:
        row.social_media += bytes;
        break;
      case world::Category::kGamingPc:
      case world::Category::kGamingConsole:
        row.gaming += bytes;
        break;
      case world::Category::kMessaging:
        row.messaging += bytes;
        break;
      default:
        row.other += bytes;
        break;
    }
  }
  return rows;
}

LockdownStudy::DiurnalShapeResult LockdownStudy::DiurnalShape(int first_day,
                                                              int last_day) const {
  DiurnalShapeResult result;
  for (const Flow& f : dataset_->flows()) {
    const int day = Dataset::DayOf(f);
    if (day < first_day || day > last_day) continue;
    const bool weekend =
        util::IsWeekend(util::WeekdayOf(StudyCalendar::DateAt(day)));
    auto& profile = weekend ? result.weekend : result.weekday;
    SpreadOverHours(f, [&profile](Timestamp t, double bytes) {
      profile[static_cast<std::size_t>(util::HourOf(t))] += bytes;
    });
  }
  for (auto* profile : {&result.weekday, &result.weekend}) {
    double sum = 0.0;
    for (double v : *profile) sum += v;
    if (sum > 0.0) {
      for (double& v : *profile) v /= sum;
    }
  }
  return result;
}

LockdownStudy::Headline LockdownStudy::HeadlineStats() const {
  Headline h;
  // Peak / trough of total active devices (Fig. 1's 32,019 -> 4,973).
  const auto rows = ActiveDevicesPerDay();
  for (const ActiveDevicesRow& row : rows) {
    h.peak_active_devices = std::max(h.peak_active_devices, row.total);
    if (row.day >= shutdown_day_ &&
        (h.trough_active_devices == 0 || row.total < h.trough_active_devices)) {
      h.trough_active_devices = row.total;
    }
  }
  h.post_shutdown_users = post_shutdown_.size();
  h.international_devices = split_.num_international;
  h.international_share =
      post_shutdown_.empty()
          ? 0.0
          : static_cast<double>(split_.num_international) /
                static_cast<double>(post_shutdown_.size());

  // Traffic increase (post-shutdown users): mean daily bytes Apr+May vs Feb.
  const int feb_start = 0;
  const int feb_days = 29;
  const int apr_start = StudyCalendar::DayIndex(util::CivilDate{2020, 4, 1});
  const int apr_may_days = 61;
  double feb_bytes = 0.0;
  double apr_may_bytes = 0.0;
  // Distinct sites per device per month.
  std::unordered_map<std::uint64_t, std::uint8_t> seen_feb, seen_apr, seen_may;
  const int may_start = StudyCalendar::DayIndex(util::CivilDate{2020, 5, 1});
  for (const Flow& f : dataset_->flows()) {
    if (!is_post_shutdown_[f.device]) continue;
    const int day = Dataset::DayOf(f);
    if (day >= feb_start && day < feb_days) {
      feb_bytes += static_cast<double>(f.total_bytes());
    } else if (day >= apr_start) {
      apr_may_bytes += static_cast<double>(f.total_bytes());
    }
    if (f.domain == kNoDomain) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(f.device) << 32) | f.domain;
    if (day < feb_days) {
      seen_feb[key] = 1;
    } else if (day >= may_start) {
      seen_may[key] = 1;
    } else if (day >= apr_start) {
      seen_apr[key] = 1;
    }
  }
  const double feb_daily = feb_bytes / feb_days;
  const double apr_may_daily = apr_may_bytes / apr_may_days;
  h.traffic_increase = feb_daily > 0.0 ? apr_may_daily / feb_daily - 1.0 : 0.0;

  const double sites_feb = static_cast<double>(seen_feb.size());
  const double sites_apr_may =
      (static_cast<double>(seen_apr.size()) + static_cast<double>(seen_may.size())) /
      2.0;
  h.distinct_sites_increase =
      sites_feb > 0.0 ? sites_apr_may / sites_feb - 1.0 : 0.0;
  return h;
}

}  // namespace lockdown::core
