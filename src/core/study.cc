#include "core/study.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace lockdown::core {

using util::StudyCalendar;
using util::Timestamp;

namespace {

// Chunk grains for the sharded passes. Chunk boundaries depend only on the
// problem size (util/thread_pool.h), so every reduction below — always folded
// in chunk order — produces the same bits at any thread count.
constexpr std::size_t kDeviceGrain = 64;    // per-device loops (CSR-disjoint)
constexpr std::size_t kDayGrain = 8;        // per-day aggregation rows
constexpr std::size_t kHourGrain = 24;      // hour-of-week median columns
constexpr std::size_t kSessionGrain = 32;   // per-device session merging
constexpr std::size_t kFlowGrain = 16384;   // flat flow scans

}  // namespace

const char* ToString(ReportClass c) noexcept {
  switch (c) {
    case ReportClass::kMobile: return "mobile";
    case ReportClass::kLaptopDesktop: return "laptop-desktop";
    case ReportClass::kIot: return "iot";
    case ReportClass::kUnclassified: return "unclassified";
  }
  return "???";
}

ReportClass LockdownStudy::GroupOf(classify::DeviceClass c) noexcept {
  switch (c) {
    case classify::DeviceClass::kMobile: return ReportClass::kMobile;
    case classify::DeviceClass::kLaptopDesktop: return ReportClass::kLaptopDesktop;
    case classify::DeviceClass::kIot:
    case classify::DeviceClass::kGameConsole: return ReportClass::kIot;
    case classify::DeviceClass::kUnknown: return ReportClass::kUnclassified;
  }
  return ReportClass::kUnclassified;
}

LockdownStudy::LockdownStudy(const Dataset& dataset,
                             const world::ServiceCatalog& catalog, int threads)
    : dataset_(&dataset),
      catalog_(&catalog),
      geo_db_(catalog),
      zoom_(catalog),
      pool_(util::ResolveThreadCount(threads)),
      shutdown_day_(StudyCalendar::DayIndex(StudyCalendar::kStayAtHome)),
      post_shutdown_day_(StudyCalendar::DayIndex(StudyCalendar::kBreakEnd)) {
  const std::size_t n = dataset.num_devices();

  // Classify every device. Each slot is written by exactly one chunk.
  const classify::DeviceClassifier classifier =
      classify::DeviceClassifier::Default(catalog);
  classifications_.resize(n);
  report_class_.resize(n);
  pool_.ParallelFor(n, kDeviceGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        const auto dev = static_cast<DeviceIndex>(i);
                        classifications_[i] =
                            classifier.Classify(dataset.device(dev).observations);
                        report_class_[i] = GroupOf(classifications_[i].device_class);
                      }
                    });

  // Precompute per-domain application flags (slot-disjoint writes).
  domain_flags_.resize(dataset.num_domains());
  pool_.ParallelFor(dataset.num_domains(), kDeviceGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        const std::string_view name =
                            dataset.DomainName(static_cast<DomainId>(i));
                        if (name.empty()) continue;
                        DomainFlags& f = domain_flags_[i];
                        f.zoom = zoom_.MatchesDomain(name);
                        f.fb_family = social_.IsFacebookFamily(name);
                        f.instagram_only = social_.IsInstagramOnly(name);
                        f.tiktok = social_.IsTikTok(name);
                        f.steam = steam_.Matches(name);
                        f.nintendo = nintendo_.IsNintendo(name);
                        f.nintendo_gameplay = nintendo_.IsGameplay(name);
                      }
                    });

  // Post-shutdown users: the devices that "remained on campus after the
  // shutdown" (§4). Students kept departing through the academic break, so a
  // device counts only if it still has traffic once online classes begin
  // (3/30) — otherwise the cohort would mix in departing devices and the
  // §4.1 within-cohort comparisons would reflect demographics, not behaviour.
  // The CSR index makes each device's flag independent of every other's.
  is_post_shutdown_.assign(n, 0);
  pool_.ParallelFor(n, kDeviceGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        for (const Flow& f :
                             dataset.FlowsOfDevice(static_cast<DeviceIndex>(i))) {
                          if (Dataset::DayOf(f) >= post_shutdown_day_) {
                            is_post_shutdown_[i] = 1;
                            break;
                          }
                        }
                      }
                    });
  for (DeviceIndex i = 0; i < n; ++i) {
    if (is_post_shutdown_[i]) post_shutdown_.push_back(i);
  }

  ComputeSplit();
}

bool LockdownStudy::IsZoomFlow(const Flow& f) const noexcept {
  if (f.domain != kNoDomain) return domain_flags_[f.domain].zoom;
  return zoom_.MatchesCurrentIp(f.server_ip) || zoom_.MatchesHistoricalIp(f.server_ip);
}

template <typename Fn>
void LockdownStudy::SpreadOverHours(const Flow& f, Fn&& add) {
  const Timestamp start = Dataset::StartOf(f);
  const auto dur = static_cast<Timestamp>(f.duration_s);
  const Timestamp end = start + std::max<Timestamp>(dur, 1);
  const double total = static_cast<double>(f.total_bytes());
  const double span = static_cast<double>(end - start);
  Timestamp t = start;
  while (t < end) {
    const Timestamp hour_end =
        (t / util::kSecondsPerHour + 1) * util::kSecondsPerHour;
    const Timestamp chunk_end = std::min(hour_end, end);
    add(t, total * static_cast<double>(chunk_end - t) / span);
    t = chunk_end;
  }
}

void LockdownStudy::ComputeSplit() {
  // §4.2: February traffic of post-shutdown users, bytes-weighted midpoint,
  // CDNs excluded (handled inside the classifier via the geo database).
  // Devices shard by chunk, so the per-shard classifiers hold disjoint keys
  // and each device's accumulation runs in its serial (CSR) flow order.
  const std::size_t n = dataset_->num_devices();
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, kDeviceGrain);
  std::vector<geo::InternationalClassifier> shards(
      num_chunks, geo::InternationalClassifier(geo_db_));
  pool_.ParallelFor(n, kDeviceGrain,
                    [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                      geo::InternationalClassifier& intl = shards[chunk];
                      for (std::size_t i = begin; i < end; ++i) {
                        if (!is_post_shutdown_[i]) continue;
                        const auto dev = static_cast<DeviceIndex>(i);
                        // The classifier keys on opaque device ids; the dense
                        // dataset index works as that key directly.
                        for (const Flow& f : dataset_->FlowsOfDevice(dev)) {
                          intl.Observe(privacy::DeviceId{dev}, f.server_ip,
                                       f.total_bytes(), Dataset::StartOf(f));
                        }
                      }
                    });
  geo::InternationalClassifier intl(geo_db_);
  for (std::size_t c = 0; c < num_chunks; ++c) intl.Merge(shards[c]);
  shards.clear();

  // Classify each cohort member; stage verdicts so the vector<bool> and the
  // counters are filled serially in device order.
  enum : std::uint8_t { kNoGeo = 0, kDomestic = 1, kInternational = 2 };
  std::vector<std::uint8_t> verdicts(post_shutdown_.size(), kNoGeo);
  pool_.ParallelFor(post_shutdown_.size(), kDeviceGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t k = begin; k < end; ++k) {
                        const auto result =
                            intl.Classify(privacy::DeviceId{post_shutdown_[k]});
                        if (!result) continue;
                        verdicts[k] = result->international ? kInternational
                                                            : kDomestic;
                      }
                    });
  split_.international.assign(n, false);
  for (std::size_t k = 0; k < post_shutdown_.size(); ++k) {
    if (verdicts[k] == kNoGeo) continue;  // no usable Feb traffic -> domestic
    ++split_.num_with_geo;
    if (verdicts[k] == kInternational) {
      split_.international[post_shutdown_[k]] = true;
      ++split_.num_international;
    }
  }
}

std::vector<LockdownStudy::ActiveDevicesRow> LockdownStudy::ActiveDevicesPerDay()
    const {
  const int days = StudyCalendar::NumDays();
  const std::size_t n = dataset_->num_devices();
  std::vector<std::uint8_t> active(static_cast<std::size_t>(days) * n, 0);
  // Column-disjoint fill: each device only touches its own column.
  pool_.ParallelFor(n, kDeviceGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t dev = begin; dev < end; ++dev) {
                        for (const Flow& f : dataset_->FlowsOfDevice(
                                 static_cast<DeviceIndex>(dev))) {
                          const int day = Dataset::DayOf(f);
                          if (day < 0 || day >= days) continue;
                          active[static_cast<std::size_t>(day) * n + dev] = 1;
                        }
                      }
                    });
  std::vector<ActiveDevicesRow> rows(static_cast<std::size_t>(days));
  // Row-disjoint aggregation: each day reads its own slice.
  pool_.ParallelFor(static_cast<std::size_t>(days), kDayGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t day = begin; day < end; ++day) {
                        ActiveDevicesRow& row = rows[day];
                        row.day = static_cast<int>(day);
                        const std::uint8_t* base = active.data() + day * n;
                        for (std::size_t dev = 0; dev < n; ++dev) {
                          if (!base[dev]) continue;
                          ++row.by_class[static_cast<std::size_t>(
                              report_class_[dev])];
                          ++row.total;
                        }
                      }
                    });
  return rows;
}

std::vector<LockdownStudy::BytesPerDeviceRow> LockdownStudy::BytesPerDevicePerDay()
    const {
  const int days = StudyCalendar::NumDays();
  const std::size_t n = dataset_->num_devices();
  std::vector<double> bytes(static_cast<std::size_t>(days) * n, 0.0);
  pool_.ParallelFor(n, kDeviceGrain,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t dev = begin; dev < end; ++dev) {
                        for (const Flow& f : dataset_->FlowsOfDevice(
                                 static_cast<DeviceIndex>(dev))) {
                          const int day = Dataset::DayOf(f);
                          if (day < 0 || day >= days) continue;
                          bytes[static_cast<std::size_t>(day) * n + dev] +=
                              static_cast<double>(f.total_bytes());
                        }
                      }
                    });
  std::vector<BytesPerDeviceRow> rows(static_cast<std::size_t>(days));
  pool_.ParallelFor(
      static_cast<std::size_t>(days), kDayGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::array<std::vector<double>, kNumReportClasses> per_class;
        for (std::size_t day = begin; day < end; ++day) {
          BytesPerDeviceRow& row = rows[day];
          row.day = static_cast<int>(day);
          for (auto& v : per_class) v.clear();
          const double* base = bytes.data() + day * n;
          for (std::size_t dev = 0; dev < n; ++dev) {
            if (base[dev] <= 0.0) continue;
            per_class[static_cast<std::size_t>(report_class_[dev])].push_back(
                base[dev]);
          }
          for (int c = 0; c < kNumReportClasses; ++c) {
            auto& v = per_class[static_cast<std::size_t>(c)];
            row.mean[static_cast<std::size_t>(c)] = analysis::Mean(v);
            row.median[static_cast<std::size_t>(c)] =
                analysis::PercentileInPlace(v, 50.0);
          }
        }
      });
  return rows;
}

LockdownStudy::HourOfWeekResult LockdownStudy::HourOfWeekVolume() const {
  HourOfWeekResult result;
  const std::size_t n = dataset_->num_devices();
  constexpr int kH = analysis::HourOfWeekSeries::kHours;
  for (std::size_t w = 0; w < 4; ++w) {
    const Timestamp anchor = util::TimestampOf(StudyCalendar::kFig3Weeks[w]);
    // Per (device, hour-of-week) volume for this week; device-major so the
    // fill shards over devices without write overlap.
    std::vector<double> volume(n * static_cast<std::size_t>(kH), 0.0);
    pool_.ParallelFor(
        n, kDeviceGrain, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t dev = begin; dev < end; ++dev) {
            for (const Flow& f :
                 dataset_->FlowsOfDevice(static_cast<DeviceIndex>(dev))) {
              SpreadOverHours(f, [&](Timestamp t, double b) {
                const auto bin = analysis::HourOfWeekSeries::BinOf(t, anchor);
                if (bin) {
                  volume[dev * static_cast<std::size_t>(kH) +
                         static_cast<std::size_t>(*bin)] += b;
                }
              });
            }
          }
        });
    // Median across devices with substantive traffic in that hour. The
    // floor keeps heartbeat-only devices (IoT pings, idle gadgets) from
    // swamping the median — their per-hour kilobytes say nothing about user
    // behaviour, which is what Fig. 3 tracks.
    constexpr double kMinHourBytes = 1e6;
    pool_.ParallelFor(
        static_cast<std::size_t>(kH), kHourGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          std::vector<double> column;
          for (std::size_t h = begin; h < end; ++h) {
            column.clear();
            for (std::size_t dev = 0; dev < n; ++dev) {
              const double v = volume[dev * static_cast<std::size_t>(kH) + h];
              if (v >= kMinHourBytes) column.push_back(v);
            }
            result.weeks[w].AddBin(static_cast<int>(h),
                                   analysis::PercentileInPlace(column, 50.0));
          }
        });
  }
  // "the data is normalized by the minimum volume of traffic across all
  //  weeks" (§4.1).
  double min_positive = 0.0;
  for (const auto& week : result.weeks) {
    const double m = week.MinPositive();
    if (m > 0.0 && (min_positive == 0.0 || m < min_positive)) min_positive = m;
  }
  result.normalization = min_positive;
  for (auto& week : result.weeks) week.Scale(min_positive);
  return result;
}

std::vector<LockdownStudy::Fig4Row> LockdownStudy::MedianBytesExcludingZoom() const {
  const int days = StudyCalendar::NumDays();
  const std::size_t n = dataset_->num_devices();
  std::vector<double> bytes(static_cast<std::size_t>(days) * n, 0.0);
  pool_.ParallelFor(
      n, kDeviceGrain, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t dev = begin; dev < end; ++dev) {
          if (!is_post_shutdown_[dev]) continue;
          for (const Flow& f :
               dataset_->FlowsOfDevice(static_cast<DeviceIndex>(dev))) {
            const int day = Dataset::DayOf(f);
            if (day < 0 || day >= days) continue;
            if (IsZoomFlow(f)) continue;  // "we exclude Zoom traffic" (§4.2)
            bytes[static_cast<std::size_t>(day) * n + dev] +=
                static_cast<double>(f.total_bytes());
          }
        }
      });
  std::vector<Fig4Row> rows(static_cast<std::size_t>(days));
  pool_.ParallelFor(
      static_cast<std::size_t>(days), kDayGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<double> groups[4];
        for (std::size_t day = begin; day < end; ++day) {
          Fig4Row& row = rows[day];
          row.day = static_cast<int>(day);
          for (auto& g : groups) g.clear();
          const double* base = bytes.data() + day * n;
          for (std::size_t dev = 0; dev < n; ++dev) {
            if (base[dev] <= 0.0 || !is_post_shutdown_[dev]) continue;
            const ReportClass rc = report_class_[dev];
            // "We consider mobile and desktop devices separately from
            //  unclassified devices, and exclude IoT devices here" (Fig. 4
            //  caption).
            int group;
            if (rc == ReportClass::kMobile || rc == ReportClass::kLaptopDesktop) {
              group = split_.international[dev] ? 0 : 1;
            } else if (rc == ReportClass::kUnclassified) {
              group = split_.international[dev] ? 2 : 3;
            } else {
              continue;
            }
            groups[group].push_back(base[dev]);
          }
          row.intl_mobile_desktop = analysis::PercentileInPlace(groups[0], 50.0);
          row.dom_mobile_desktop = analysis::PercentileInPlace(groups[1], 50.0);
          row.intl_unclassified = analysis::PercentileInPlace(groups[2], 50.0);
          row.dom_unclassified = analysis::PercentileInPlace(groups[3], 50.0);
        }
      });
  return rows;
}

analysis::DailySeries LockdownStudy::ZoomDailyBytes() const {
  const std::size_t n = dataset_->num_devices();
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, kDeviceGrain);
  std::vector<analysis::DailySeries> shards(num_chunks);
  pool_.ParallelFor(
      n, kDeviceGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        analysis::DailySeries& series = shards[chunk];
        for (std::size_t dev = begin; dev < end; ++dev) {
          if (!is_post_shutdown_[dev]) continue;
          for (const Flow& f :
               dataset_->FlowsOfDevice(static_cast<DeviceIndex>(dev))) {
            if (!IsZoomFlow(f)) continue;
            series.Add(Dataset::StartOf(f), static_cast<double>(f.total_bytes()));
          }
        }
      });
  analysis::DailySeries series;
  for (std::size_t c = 0; c < num_chunks; ++c) series.Merge(shards[c]);
  return series;
}

LockdownStudy::SocialBox LockdownStudy::SocialDurations(apps::SocialApp app,
                                                        int month) const {
  const Timestamp month_start = util::TimestampOf(util::CivilDate{2020, month, 1});
  const Timestamp month_end =
      util::TimestampOf(util::CivilDate{2020, month + 1, 1});
  // Session merging dominates here, so shard over cohort members; per-device
  // hours land in disjoint slots and fold below in cohort order — the order
  // the serial loop pushed them.
  enum : std::uint8_t { kSkip = 0, kDomestic = 1, kInternational = 2 };
  std::vector<double> hours_of(post_shutdown_.size(), 0.0);
  std::vector<std::uint8_t> bucket(post_shutdown_.size(), kSkip);
  pool_.ParallelFor(
      post_shutdown_.size(), kSessionGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        std::vector<apps::FlowInterval> intervals;
        for (std::size_t k = begin; k < end; ++k) {
          const DeviceIndex dev = post_shutdown_[k];
          // "We analyze only mobile traffic" (§5.2).
          if (report_class_[dev] != ReportClass::kMobile) continue;
          intervals.clear();
          for (const Flow& f : dataset_->FlowsOfDevice(dev)) {
            const Timestamp start = Dataset::StartOf(f);
            if (start < month_start || start >= month_end ||
                f.domain == kNoDomain) {
              continue;
            }
            const DomainFlags& flags = domain_flags_[f.domain];
            const bool relevant =
                app == apps::SocialApp::kTikTok ? flags.tiktok : flags.fb_family;
            if (!relevant) continue;
            intervals.push_back(apps::FlowInterval{
                start,
                start + std::max<Timestamp>(static_cast<Timestamp>(f.duration_s), 1),
                f.domain, f.total_bytes()});
          }
          if (intervals.empty()) continue;
          double hours = 0.0;
          for (const apps::Session& session : apps::MergeSessions(intervals)) {
            if (app != apps::SocialApp::kTikTok) {
              const apps::SocialApp resolved = social_.ClassifySession(
                  session,
                  [this](std::uint32_t tag) { return dataset_->DomainName(tag); });
              if (resolved != app) continue;
            }
            hours += session.duration_s() / 3600.0;
          }
          if (hours <= 0.0) continue;
          hours_of[k] = hours;
          bucket[k] = split_.international[dev] ? kInternational : kDomestic;
        }
      });
  std::vector<double> dom;
  std::vector<double> intl;
  for (std::size_t k = 0; k < post_shutdown_.size(); ++k) {
    if (bucket[k] == kSkip) continue;
    (bucket[k] == kInternational ? intl : dom).push_back(hours_of[k]);
  }
  return SocialBox{analysis::ComputeBoxStats(std::move(dom)),
                   analysis::ComputeBoxStats(std::move(intl))};
}

LockdownStudy::SteamBox LockdownStudy::SteamUsage(int month) const {
  const Timestamp month_start = util::TimestampOf(util::CivilDate{2020, month, 1});
  const Timestamp month_end =
      util::TimestampOf(util::CivilDate{2020, month + 1, 1});
  std::vector<double> dom_bytes, intl_bytes, dom_conns, intl_conns;
  const std::size_t n = dataset_->num_devices();
  std::vector<double> bytes(n, 0.0);
  std::vector<double> conns(n, 0.0);
  pool_.ParallelFor(
      n, kDeviceGrain, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t dev = begin; dev < end; ++dev) {
          for (const Flow& f :
               dataset_->FlowsOfDevice(static_cast<DeviceIndex>(dev))) {
            const Timestamp start = Dataset::StartOf(f);
            if (start < month_start || start >= month_end ||
                f.domain == kNoDomain) {
              continue;
            }
            if (!domain_flags_[f.domain].steam) continue;
            bytes[dev] += static_cast<double>(f.total_bytes());
            conns[dev] += 1.0;
          }
        }
      });
  for (const DeviceIndex dev : post_shutdown_) {
    if (conns[dev] <= 0.0) continue;
    if (split_.international[dev]) {
      intl_bytes.push_back(bytes[dev]);
      intl_conns.push_back(conns[dev]);
    } else {
      dom_bytes.push_back(bytes[dev]);
      dom_conns.push_back(conns[dev]);
    }
  }
  return SteamBox{analysis::ComputeBoxStats(std::move(dom_bytes)),
                  analysis::ComputeBoxStats(std::move(intl_bytes)),
                  analysis::ComputeBoxStats(std::move(dom_conns)),
                  analysis::ComputeBoxStats(std::move(intl_conns))};
}

namespace {

/// True if the device is a Switch by the §5.3.2 traffic rule.
bool IsSwitchDevice(const classify::DeviceObservations& obs,
                    const apps::NintendoSignature& nintendo) {
  std::uint64_t total = 0;
  std::uint64_t nintendo_bytes = 0;
  for (const auto& [domain, b] : obs.bytes_by_domain) {
    total += b;
    if (nintendo.IsNintendo(domain)) nintendo_bytes += b;
  }
  return total > 0 && nintendo_bytes * 2 >= total;
}

}  // namespace

analysis::DailySeries LockdownStudy::SwitchGameplayDaily(int ma_window) const {
  // Switches "active in both February and May" (Fig. 8 caption).
  const std::size_t n = dataset_->num_devices();
  const int feb_end = StudyCalendar::DayIndex(util::CivilDate{2020, 3, 1});
  const int may_start = StudyCalendar::DayIndex(util::CivilDate{2020, 5, 1});
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, kDeviceGrain);
  std::vector<analysis::DailySeries> shards(num_chunks);
  pool_.ParallelFor(
      n, kDeviceGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        analysis::DailySeries& series = shards[chunk];
        for (std::size_t dev = begin; dev < end; ++dev) {
          const auto di = static_cast<DeviceIndex>(dev);
          if (!IsSwitchDevice(dataset_->device(di).observations, nintendo_)) {
            continue;
          }
          const auto flows = dataset_->FlowsOfDevice(di);
          bool in_feb = false;
          bool in_may = false;
          for (const Flow& f : flows) {
            const int day = Dataset::DayOf(f);
            in_feb |= day < feb_end;
            in_may |= day >= may_start;
          }
          if (!in_feb || !in_may) continue;
          for (const Flow& f : flows) {
            if (f.domain == kNoDomain ||
                !domain_flags_[f.domain].nintendo_gameplay) {
              continue;
            }
            series.Add(Dataset::StartOf(f), static_cast<double>(f.total_bytes()));
          }
        }
      });
  analysis::DailySeries series;
  for (std::size_t c = 0; c < num_chunks; ++c) series.Merge(shards[c]);
  return series.MovingAverage(ma_window);
}

LockdownStudy::SwitchCounts LockdownStudy::CountSwitches() const {
  const std::size_t n = dataset_->num_devices();
  const int feb_end = StudyCalendar::DayIndex(util::CivilDate{2020, 3, 1});
  const int april_start = StudyCalendar::DayIndex(util::CivilDate{2020, 4, 1});
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, kDeviceGrain);
  std::vector<SwitchCounts> shards(num_chunks);
  pool_.ParallelFor(
      n, kDeviceGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        SwitchCounts& counts = shards[chunk];
        for (std::size_t dev = begin; dev < end; ++dev) {
          const auto di = static_cast<DeviceIndex>(dev);
          if (!IsSwitchDevice(dataset_->device(di).observations, nintendo_)) {
            continue;
          }
          const auto flows = dataset_->FlowsOfDevice(di);
          if (flows.empty()) continue;
          int first_day = StudyCalendar::NumDays();
          bool feb = false;
          bool post = false;
          for (const Flow& f : flows) {
            const int day = Dataset::DayOf(f);
            first_day = std::min(first_day, day);
            feb |= day < feb_end;
            post |= day >= post_shutdown_day_;
          }
          counts.active_february += feb;
          counts.active_post_shutdown += post;
          counts.new_in_april_may += first_day >= april_start;
        }
      });
  SwitchCounts counts;
  for (const SwitchCounts& s : shards) {
    counts.active_february += s.active_february;
    counts.active_post_shutdown += s.active_post_shutdown;
    counts.new_in_april_may += s.new_in_april_may;
  }
  return counts;
}

std::vector<LockdownStudy::CategoryVolumeRow> LockdownStudy::CategoryVolumes()
    const {
  const int days = StudyCalendar::NumDays();
  const std::size_t num_flows = dataset_->num_flows();
  const std::size_t num_chunks =
      util::ThreadPool::NumChunks(num_flows, kFlowGrain);
  std::vector<std::vector<CategoryVolumeRow>> shards(
      num_chunks, std::vector<CategoryVolumeRow>(static_cast<std::size_t>(days)));
  const auto flows = dataset_->flows();
  pool_.ParallelFor(
      num_flows, kFlowGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::vector<CategoryVolumeRow>& rows = shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const Flow& f = flows[i];
          if (!is_post_shutdown_[f.device]) continue;
          const int day = Dataset::DayOf(f);
          if (day < 0 || day >= days) continue;
          CategoryVolumeRow& row = rows[static_cast<std::size_t>(day)];
          const double bytes = static_cast<double>(f.total_bytes());
          const auto svc = catalog_->FindByIp(f.server_ip);
          if (!svc) {
            row.other += bytes;
            continue;
          }
          switch (catalog_->Get(*svc).category) {
            case world::Category::kEducation:
            case world::Category::kEmailCloud:
              row.education += bytes;
              break;
            case world::Category::kVideoConferencing:
              row.video_conferencing += bytes;
              break;
            case world::Category::kStreaming:
            case world::Category::kMusic:
              row.streaming += bytes;
              break;
            case world::Category::kSocialMedia:
              row.social_media += bytes;
              break;
            case world::Category::kGamingPc:
            case world::Category::kGamingConsole:
              row.gaming += bytes;
              break;
            case world::Category::kMessaging:
              row.messaging += bytes;
              break;
            default:
              row.other += bytes;
              break;
          }
        }
      });
  std::vector<CategoryVolumeRow> rows(static_cast<std::size_t>(days));
  for (int d = 0; d < days; ++d) rows[static_cast<std::size_t>(d)].day = d;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    for (int d = 0; d < days; ++d) {
      CategoryVolumeRow& dst = rows[static_cast<std::size_t>(d)];
      const CategoryVolumeRow& src = shards[c][static_cast<std::size_t>(d)];
      dst.education += src.education;
      dst.video_conferencing += src.video_conferencing;
      dst.streaming += src.streaming;
      dst.social_media += src.social_media;
      dst.gaming += src.gaming;
      dst.messaging += src.messaging;
      dst.other += src.other;
    }
  }
  return rows;
}

LockdownStudy::DiurnalShapeResult LockdownStudy::DiurnalShape(int first_day,
                                                              int last_day) const {
  const std::size_t num_flows = dataset_->num_flows();
  const std::size_t num_chunks =
      util::ThreadPool::NumChunks(num_flows, kFlowGrain);
  std::vector<DiurnalShapeResult> shards(num_chunks);
  const auto flows = dataset_->flows();
  pool_.ParallelFor(
      num_flows, kFlowGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        DiurnalShapeResult& partial = shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const Flow& f = flows[i];
          const int day = Dataset::DayOf(f);
          if (day < first_day || day > last_day) continue;
          const bool weekend =
              util::IsWeekend(util::WeekdayOf(StudyCalendar::DateAt(day)));
          auto& profile = weekend ? partial.weekend : partial.weekday;
          SpreadOverHours(f, [&profile](Timestamp t, double bytes) {
            profile[static_cast<std::size_t>(util::HourOf(t))] += bytes;
          });
        }
      });
  DiurnalShapeResult result;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    for (std::size_t h = 0; h < 24; ++h) {
      result.weekday[h] += shards[c].weekday[h];
      result.weekend[h] += shards[c].weekend[h];
    }
  }
  for (auto* profile : {&result.weekday, &result.weekend}) {
    double sum = 0.0;
    for (double v : *profile) sum += v;
    if (sum > 0.0) {
      for (double& v : *profile) v /= sum;
    }
  }
  return result;
}

LockdownStudy::Headline LockdownStudy::HeadlineStats() const {
  Headline h;
  // Peak / trough of total active devices (Fig. 1's 32,019 -> 4,973).
  const auto rows = ActiveDevicesPerDay();
  for (const ActiveDevicesRow& row : rows) {
    h.peak_active_devices = std::max(h.peak_active_devices, row.total);
    if (row.day >= shutdown_day_ &&
        (h.trough_active_devices == 0 || row.total < h.trough_active_devices)) {
      h.trough_active_devices = row.total;
    }
  }
  h.post_shutdown_users = post_shutdown_.size();
  h.international_devices = split_.num_international;
  h.international_share =
      post_shutdown_.empty()
          ? 0.0
          : static_cast<double>(split_.num_international) /
                static_cast<double>(post_shutdown_.size());

  // Traffic increase (post-shutdown users): mean daily bytes Apr+May vs Feb,
  // and distinct sites per device per month. The flow scan shards into
  // per-chunk partial sums and (device, domain) sets; partials fold in chunk
  // order, and set sizes are union-order independent.
  const int feb_start = 0;
  const int feb_days = 29;
  const int apr_start = StudyCalendar::DayIndex(util::CivilDate{2020, 4, 1});
  const int apr_may_days = 61;
  const int may_start = StudyCalendar::DayIndex(util::CivilDate{2020, 5, 1});
  struct Partial {
    double feb_bytes = 0.0;
    double apr_may_bytes = 0.0;
    std::unordered_set<std::uint64_t> seen_feb, seen_apr, seen_may;
  };
  const std::size_t num_flows = dataset_->num_flows();
  const std::size_t num_chunks =
      util::ThreadPool::NumChunks(num_flows, kFlowGrain);
  std::vector<Partial> shards(num_chunks);
  const auto flows = dataset_->flows();
  pool_.ParallelFor(
      num_flows, kFlowGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        Partial& p = shards[chunk];
        for (std::size_t i = begin; i < end; ++i) {
          const Flow& f = flows[i];
          if (!is_post_shutdown_[f.device]) continue;
          const int day = Dataset::DayOf(f);
          if (day >= feb_start && day < feb_days) {
            p.feb_bytes += static_cast<double>(f.total_bytes());
          } else if (day >= apr_start) {
            p.apr_may_bytes += static_cast<double>(f.total_bytes());
          }
          if (f.domain == kNoDomain) continue;
          const std::uint64_t key =
              (static_cast<std::uint64_t>(f.device) << 32) | f.domain;
          if (day < feb_days) {
            p.seen_feb.insert(key);
          } else if (day >= may_start) {
            p.seen_may.insert(key);
          } else if (day >= apr_start) {
            p.seen_apr.insert(key);
          }
        }
      });
  double feb_bytes = 0.0;
  double apr_may_bytes = 0.0;
  std::unordered_set<std::uint64_t> seen_feb, seen_apr, seen_may;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    Partial& p = shards[c];
    feb_bytes += p.feb_bytes;
    apr_may_bytes += p.apr_may_bytes;
    seen_feb.merge(p.seen_feb);
    seen_apr.merge(p.seen_apr);
    seen_may.merge(p.seen_may);
  }
  const double feb_daily = feb_bytes / feb_days;
  const double apr_may_daily = apr_may_bytes / apr_may_days;
  h.traffic_increase = feb_daily > 0.0 ? apr_may_daily / feb_daily - 1.0 : 0.0;

  const double sites_feb = static_cast<double>(seen_feb.size());
  const double sites_apr_may =
      (static_cast<double>(seen_apr.size()) + static_cast<double>(seen_may.size())) /
      2.0;
  h.distinct_sites_increase =
      sites_feb > 0.0 ? sites_apr_may / sites_feb - 1.0 : 0.0;
  return h;
}

}  // namespace lockdown::core
