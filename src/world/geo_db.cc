#include "world/geo_db.h"

#include <algorithm>

namespace lockdown::world {

GeoDatabase::GeoDatabase(const ServiceCatalog& catalog,
                         std::vector<std::pair<net::Cidr, GeoInfo>> extra)
    : blocks_(std::move(extra)) {
  blocks_.reserve(blocks_.size() + catalog.size());
  for (const Service& svc : catalog.services()) {
    blocks_.emplace_back(svc.block,
                         GeoInfo{svc.country, svc.location, svc.is_cdn});
  }
  std::sort(blocks_.begin(), blocks_.end(), [](const auto& a, const auto& b) {
    return a.first.base() < b.first.base();
  });
}

std::optional<GeoInfo> GeoDatabase::Lookup(net::Ipv4Address ip) const {
  auto pos = std::upper_bound(
      blocks_.begin(), blocks_.end(), ip,
      [](net::Ipv4Address v, const auto& entry) { return v < entry.first.base(); });
  if (pos == blocks_.begin()) return std::nullopt;
  --pos;
  if (pos->first.Contains(ip)) return pos->second;
  return std::nullopt;
}

}  // namespace lockdown::world
