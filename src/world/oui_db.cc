#include "world/oui_db.h"

#include <algorithm>
#include <vector>

namespace lockdown::world {

const char* ToString(VendorHint h) noexcept {
  switch (h) {
    case VendorHint::kComputer: return "computer";
    case VendorHint::kPhone: return "phone";
    case VendorHint::kComputerOrPhone: return "computer-or-phone";
    case VendorHint::kIot: return "iot";
    case VendorHint::kNintendo: return "nintendo";
    case VendorHint::kConsoleOther: return "console-other";
    case VendorHint::kGeneric: return "generic";
  }
  return "???";
}

OuiDatabase::OuiDatabase() {
  const auto add = [this](std::uint32_t oui, std::string_view vendor, VendorHint hint) {
    table_.emplace(oui, VendorInfo{vendor, hint});
  };
  // Apple ships laptops, phones and tablets under shared prefixes.
  add(0xA483E7, "Apple", VendorHint::kComputerOrPhone);
  add(0xF01898, "Apple", VendorHint::kComputerOrPhone);
  add(0x3C22FB, "Apple", VendorHint::kComputerOrPhone);
  add(0x88E9FE, "Apple", VendorHint::kComputerOrPhone);
  add(0x6C4D73, "Apple", VendorHint::kComputerOrPhone);
  // PC vendors.
  add(0x54BF64, "Dell", VendorHint::kComputer);
  add(0xD4BED9, "Dell", VendorHint::kComputer);
  add(0x3CD92B, "HP", VendorHint::kComputer);
  add(0x9457A5, "HP", VendorHint::kComputer);
  add(0x54E1AD, "Lenovo", VendorHint::kComputer);
  add(0x8CDCD4, "Lenovo", VendorHint::kComputer);
  add(0xA0C589, "Intel", VendorHint::kComputer);
  add(0x8C8CAA, "Intel", VendorHint::kComputer);
  add(0x0C5415, "Intel", VendorHint::kComputer);
  add(0xF8634D, "ASUSTek", VendorHint::kComputer);
  // Phone vendors.
  add(0xE8508B, "Samsung Electronics", VendorHint::kPhone);
  add(0x5C5188, "Samsung Electronics", VendorHint::kPhone);
  add(0xA02195, "Samsung Electronics", VendorHint::kPhone);
  add(0x94652D, "OnePlus", VendorHint::kPhone);
  add(0x401B5F, "Xiaomi", VendorHint::kPhone);
  add(0x64CC2E, "Xiaomi", VendorHint::kPhone);
  add(0x48435A, "Huawei", VendorHint::kPhone);
  add(0xD0FF98, "Huawei", VendorHint::kPhone);
  add(0x2C598A, "LG Electronics Mobile", VendorHint::kPhone);
  add(0x1C232C, "Google (Pixel)", VendorHint::kPhone);
  // Consoles.
  add(0x98B6E9, "Nintendo", VendorHint::kNintendo);
  add(0x7CBB8A, "Nintendo", VendorHint::kNintendo);
  add(0x0403D6, "Nintendo", VendorHint::kNintendo);
  add(0xE84ECE, "Nintendo", VendorHint::kNintendo);
  add(0x00D9D1, "Sony Interactive (PS4)", VendorHint::kConsoleOther);
  add(0x5CEA1D, "Sony Interactive (PS4)", VendorHint::kConsoleOther);
  add(0x985FD3, "Microsoft (Xbox)", VendorHint::kConsoleOther);
  // IoT / appliance vendors.
  add(0x240AC4, "Espressif", VendorHint::kIot);
  add(0xECFABC, "Espressif", VendorHint::kIot);
  add(0x50C7BF, "TP-Link", VendorHint::kIot);
  add(0x1027F5, "TP-Link", VendorHint::kIot);
  add(0xB0A737, "Roku", VendorHint::kIot);
  add(0xD83134, "Roku", VendorHint::kIot);
  add(0x74C246, "Amazon Technologies", VendorHint::kIot);
  add(0xFCA183, "Amazon Technologies", VendorHint::kIot);
  add(0xB827EB, "Raspberry Pi", VendorHint::kIot);
  add(0xDCA632, "Raspberry Pi", VendorHint::kIot);
  add(0x7828CA, "Sonos", VendorHint::kIot);
  add(0x2CAA8E, "Wyze Labs", VendorHint::kIot);
  add(0x001788, "Philips Hue", VendorHint::kIot);
  add(0xCC2D8C, "LG Electronics TV", VendorHint::kIot);
  add(0x8CEA48, "Samsung TV", VendorHint::kIot);
  // Commodity radio modules: appear in phones, laptops and gadgets alike, so
  // the hint is deliberately unusable for classification.
  add(0x40F308, "Murata Manufacturing", VendorHint::kGeneric);
  add(0x68A3C4, "Liteon Technology", VendorHint::kGeneric);
  add(0xF0038C, "AzureWave", VendorHint::kGeneric);
  add(0x74DA38, "Edimax", VendorHint::kGeneric);
}

const OuiDatabase& OuiDatabase::Default() {
  static const OuiDatabase db;
  return db;
}

std::optional<VendorInfo> OuiDatabase::Lookup(net::MacAddress mac) const {
  if (IsLocallyAdministered(mac)) return std::nullopt;
  const auto it = table_.find(mac.oui());
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint32_t> OuiDatabase::OuisFor(VendorHint hint) const {
  std::vector<std::uint32_t> out;
  for (const auto& [oui, info] : table_) {
    if (info.hint == hint) out.push_back(oui);
  }
  // Deterministic order for the simulator regardless of hash-map iteration.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lockdown::world
