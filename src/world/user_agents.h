// User-Agent corpus.
//
// The paper's classifier uses "analysis of User-Agent strings" (§3). The
// corpus below is what the simulator stamps onto unencrypted flows; the
// classifier in src/classify parses the same grammar real UA strings use.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace lockdown::world {

/// Ground-truth platform of a user agent string in the corpus.
enum class UaPlatform : std::uint8_t {
  kWindowsDesktop,
  kMacDesktop,
  kLinuxDesktop,
  kIphone,
  kIpad,
  kAndroidPhone,
  kSmartTv,
  kGameConsole,
};

/// Representative UA strings for a platform (real-world strings circa early
/// 2020).
[[nodiscard]] std::span<const std::string_view> UserAgentsFor(UaPlatform p) noexcept;

}  // namespace lockdown::world
