// IP geolocation database (MaxMind-style substitute).
//
// "First we collect the geolocation data for every IP address that was
//  visited by a post-shutdown user..." (paper, §4.2)
//
// Built from the service catalog: every service block maps to its serving
// country/coordinates, and campus client pools map to San Diego. Lookups are
// binary search over disjoint sorted blocks.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "world/catalog.h"

namespace lockdown::world {

/// Result of a geolocation lookup.
struct GeoInfo {
  std::string country;  ///< ISO 3166-1 alpha-2
  GeoPoint location;
  bool is_cdn = false;  ///< address belongs to a CDN (excluded from midpoints)
};

class GeoDatabase {
 public:
  /// Builds from the catalog's service blocks plus extra (block, info) pairs
  /// such as campus client pools.
  explicit GeoDatabase(const ServiceCatalog& catalog,
                       std::vector<std::pair<net::Cidr, GeoInfo>> extra = {});

  /// Geolocates an address; nullopt for addresses in no known block.
  [[nodiscard]] std::optional<GeoInfo> Lookup(net::Ipv4Address ip) const;

  [[nodiscard]] std::size_t num_blocks() const noexcept { return blocks_.size(); }

 private:
  std::vector<std::pair<net::Cidr, GeoInfo>> blocks_;  // sorted by base
};

}  // namespace lockdown::world
