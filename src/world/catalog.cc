#include "world/catalog.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "net/allocator.h"
#include "util/hash.h"
#include "util/strings.h"

namespace lockdown::world {

const char* ToString(Category c) noexcept {
  switch (c) {
    case Category::kVideoConferencing: return "video-conferencing";
    case Category::kSocialMedia: return "social-media";
    case Category::kMessaging: return "messaging";
    case Category::kStreaming: return "streaming";
    case Category::kMusic: return "music";
    case Category::kGamingPc: return "gaming-pc";
    case Category::kGamingConsole: return "gaming-console";
    case Category::kEducation: return "education";
    case Category::kWeb: return "web";
    case Category::kNews: return "news";
    case Category::kShopping: return "shopping";
    case Category::kSearch: return "search";
    case Category::kEmailCloud: return "email-cloud";
    case Category::kIotBackend: return "iot-backend";
    case Category::kCdn: return "cdn";
    case Category::kExcluded: return "excluded";
  }
  return "???";
}

namespace {

// Serving locations (approximate city coordinates).
constexpr GeoPoint kSanDiego{32.72, -117.16};  // CDN edges near campus
constexpr GeoPoint kUsWest{37.42, -122.08};
constexpr GeoPoint kUsEast{39.04, -77.49};
constexpr GeoPoint kUsCentral{41.26, -95.86};
constexpr GeoPoint kBeijing{39.90, 116.40};
constexpr GeoPoint kShanghai{31.23, 121.47};
constexpr GeoPoint kShenzhen{22.54, 114.06};
constexpr GeoPoint kHangzhou{30.27, 120.15};
constexpr GeoPoint kSeoul{37.57, 126.98};
constexpr GeoPoint kTokyo{35.68, 139.69};
constexpr GeoPoint kMumbai{19.08, 72.88};
constexpr GeoPoint kSingapore{1.35, 103.82};
constexpr GeoPoint kLondon{51.51, -0.13};
constexpr GeoPoint kFrankfurt{50.11, 8.68};
constexpr GeoPoint kParis{48.86, 2.35};
constexpr GeoPoint kSaoPaulo{-23.55, -46.63};
constexpr GeoPoint kMexicoCity{19.43, -99.13};
constexpr GeoPoint kToronto{43.65, -79.38};
constexpr GeoPoint kMoscow{55.76, 37.62};
constexpr GeoPoint kDoha{25.29, 51.53};
constexpr GeoPoint kHanoi{21.03, 105.85};

std::vector<ServiceSpec> BuildDefaultSpecs() {
  std::vector<ServiceSpec> s;
  auto add = [&s](ServiceSpec spec) { s.push_back(std::move(spec)); };

  // --- The paper's named applications -------------------------------------
  // Zoom signalling + web (matched by domain, §5.1).
  add({.name = "zoom",
       .category = Category::kVideoConferencing,
       .country = "US",
       .location = kUsWest,
       .hosts = {"zoom.us", "us04web.zoom.us", "zoomcdn.zoom.us"}});
  // Zoom media relays: reached by raw IP from the client's media stack, so
  // they never appear in DNS logs — exactly why the paper had to match
  // against Zoom's published IP list (§5.1).
  add({.name = "zoom-media",
       .category = Category::kVideoConferencing,
       .country = "US",
       .location = kUsWest,
       .hosts = {},
       .dns_less = true,
       .prefix_len = 20});
  // A retired relay block that was removed from Zoom's support page during
  // the study; recovered via the Wayback Machine in the paper (§5.1).
  add({.name = "zoom-media-legacy",
       .category = Category::kVideoConferencing,
       .country = "US",
       .location = kUsWest,
       .hosts = {},
       .dns_less = true});

  // Facebook and Instagram share delivery domains (facebook.net, fbcdn.net),
  // which forces the paper's session-disambiguation heuristic (§5.2).
  add({.name = "facebook",
       .category = Category::kSocialMedia,
       .country = "US",
       .location = kUsEast,
       .hosts = {"facebook.com", "facebook.net", "fbcdn.net", "edge-mqtt.facebook.com"}});
  add({.name = "instagram",
       .category = Category::kSocialMedia,
       .country = "US",
       .location = kUsEast,
       .hosts = {"instagram.com", "cdninstagram.com"}});
  add({.name = "tiktok",
       .category = Category::kSocialMedia,
       .country = "US",  // US edge for US users; ByteDance-owned
       .location = kUsWest,
       .hosts = {"tiktok.com", "tiktokv.com", "tiktokcdn.com", "muscdn.com"}});
  add({.name = "steam",
       .category = Category::kGamingPc,
       .country = "US",
       .location = kUsWest,
       // The support-whitelist domains the paper built its signature from (§5.3.1).
       .hosts = {"steampowered.com", "steamcommunity.com", "steamcontent.com",
                 "steamusercontent.com", "steamstatic.com"}});
  // Nintendo, split gameplay vs. non-gameplay exactly as the paper's
  // 90DNS/SwitchBlocker-derived lists do (§5.3.2).
  add({.name = "nintendo-gameplay",
       .category = Category::kGamingConsole,
       .country = "US",
       .location = kUsWest,
       .hosts = {"npln.srv.nintendo.net", "p2prel.srv.nintendo.net",
                 "mm.p2p.srv.nintendo.net", "nncs1.app.nintendowifi.net"}});
  add({.name = "nintendo-services",
       .category = Category::kGamingConsole,
       .country = "US",
       .location = kUsWest,
       .hosts = {"atum.hac.lp1.d4c.nintendo.net", "sun.hac.lp1.d4c.nintendo.net",
                 "accounts.nintendo.com", "ctest.cdn.nintendo.net",
                 "receive-lp1.dg.srv.nintendo.net", "conntest.nintendowifi.net"}});

  // --- Domestic social / messaging ----------------------------------------
  add({.name = "snapchat", .category = Category::kSocialMedia, .country = "US",
       .location = kUsWest, .hosts = {"snapchat.com", "sc-cdn.net"}});
  add({.name = "twitter", .category = Category::kSocialMedia, .country = "US",
       .location = kUsWest, .hosts = {"twitter.com", "twimg.com"}});
  add({.name = "reddit", .category = Category::kSocialMedia, .country = "US",
       .location = kUsWest, .hosts = {"reddit.com", "redd.it", "redditmedia.com"}});
  add({.name = "pinterest", .category = Category::kSocialMedia, .country = "US",
       .location = kUsWest, .hosts = {"pinterest.com", "pinimg.com"}});
  add({.name = "linkedin", .category = Category::kSocialMedia, .country = "US",
       .location = kUsWest, .hosts = {"linkedin.com", "licdn.com"}});
  add({.name = "discord", .category = Category::kMessaging, .country = "US",
       .location = kUsWest, .hosts = {"discord.com", "discord.gg", "discordapp.com"}});
  add({.name = "whatsapp", .category = Category::kMessaging, .country = "US",
       .location = kUsEast, .hosts = {"whatsapp.com", "whatsapp.net"}});
  add({.name = "telegram", .category = Category::kMessaging, .country = "NL",
       .location = {52.37, 4.90}, .hosts = {"telegram.org", "t.me"}});
  add({.name = "signal", .category = Category::kMessaging, .country = "US",
       .location = kUsEast, .hosts = {"signal.org", "whispersystems.org"}});

  // --- Streaming / music ----------------------------------------------------
  add({.name = "netflix", .category = Category::kStreaming, .country = "US",
       .location = kUsWest, .hosts = {"netflix.com", "nflxvideo.net", "nflximg.net"},
       .prefix_len = 20});
  add({.name = "youtube", .category = Category::kStreaming, .country = "US",
       .location = kUsWest, .hosts = {"youtube.com", "googlevideo.com", "ytimg.com"},
       .prefix_len = 20});
  add({.name = "hulu", .category = Category::kStreaming, .country = "US",
       .location = kUsWest, .hosts = {"hulu.com", "hulustream.com"}});
  add({.name = "disneyplus", .category = Category::kStreaming, .country = "US",
       .location = kUsWest, .hosts = {"disneyplus.com", "dssott.com"}});
  add({.name = "hbo", .category = Category::kStreaming, .country = "US",
       .location = kUsEast, .hosts = {"hbomax.com", "hbo.com"}});
  add({.name = "crunchyroll", .category = Category::kStreaming, .country = "US",
       .location = kUsWest, .hosts = {"crunchyroll.com", "vrv.co"}});
  add({.name = "spotify", .category = Category::kMusic, .country = "US",
       .location = kUsEast, .hosts = {"spotify.com", "scdn.co", "spotifycdn.com"}});
  add({.name = "soundcloud", .category = Category::kMusic, .country = "DE",
       .location = kFrankfurt, .hosts = {"soundcloud.com", "sndcdn.com"}});

  // --- PC / console gaming --------------------------------------------------
  add({.name = "epicgames", .category = Category::kGamingPc, .country = "US",
       .location = kUsEast, .hosts = {"epicgames.com", "epicgames.dev", "unrealengine.com"}});
  add({.name = "blizzard", .category = Category::kGamingPc, .country = "US",
       .location = kUsWest, .hosts = {"blizzard.com", "battle.net", "blzstatic.com"}});
  add({.name = "minecraft", .category = Category::kGamingPc, .country = "US",
       .location = kUsEast, .hosts = {"minecraft.net", "mojang.com"}});
  add({.name = "playstation", .category = Category::kGamingConsole, .country = "US",
       .location = kUsWest, .hosts = {"playstation.com", "playstation.net", "sonyentertainmentnetwork.com"}});

  // --- Education / work -----------------------------------------------------
  add({.name = "canvas", .category = Category::kEducation, .country = "US",
       .location = kUsCentral, .hosts = {"instructure.com", "canvas-user-content.com"}});
  add({.name = "gradescope", .category = Category::kEducation, .country = "US",
       .location = kUsWest, .hosts = {"gradescope.com"}});
  add({.name = "piazza", .category = Category::kEducation, .country = "US",
       .location = kUsWest, .hosts = {"piazza.com"}});
  add({.name = "google-workspace", .category = Category::kEducation, .country = "US",
       .location = kUsWest, .hosts = {"docs.google.com", "drive.google.com", "classroom.google.com"}});
  add({.name = "gmail", .category = Category::kEmailCloud, .country = "US",
       .location = kUsWest, .hosts = {"mail.google.com", "gmail.com"}});
  add({.name = "dropbox", .category = Category::kEmailCloud, .country = "US",
       .location = kUsWest, .hosts = {"dropbox.com", "dropboxstatic.com"}});
  add({.name = "box", .category = Category::kEmailCloud, .country = "US",
       .location = kUsWest, .hosts = {"box.com", "boxcdn.net"}});
  add({.name = "github", .category = Category::kWeb, .country = "US",
       .location = kUsWest, .hosts = {"github.com", "githubusercontent.com"}});
  add({.name = "stackoverflow", .category = Category::kWeb, .country = "US",
       .location = kUsEast, .hosts = {"stackoverflow.com", "sstatic.net"}});
  add({.name = "wikipedia", .category = Category::kWeb, .country = "US",
       .location = kUsEast, .hosts = {"wikipedia.org", "wikimedia.org"}});
  add({.name = "google-search", .category = Category::kSearch, .country = "US",
       .location = kUsWest, .hosts = {"google.com", "gstatic.com"}});
  add({.name = "duckduckgo", .category = Category::kSearch, .country = "US",
       .location = kUsEast, .hosts = {"duckduckgo.com"}});

  // --- News / misc domestic web ---------------------------------------------
  add({.name = "nytimes", .category = Category::kNews, .country = "US",
       .location = kUsEast, .hosts = {"nytimes.com", "nyt.com"}});
  add({.name = "cnn", .category = Category::kNews, .country = "US",
       .location = kUsEast, .hosts = {"cnn.com", "cnn.io"}});
  add({.name = "washingtonpost", .category = Category::kNews, .country = "US",
       .location = kUsEast, .hosts = {"washingtonpost.com"}});
  add({.name = "weather", .category = Category::kWeb, .country = "US",
       .location = kUsEast, .hosts = {"weather.com", "wunderground.com"}});
  add({.name = "yelp", .category = Category::kWeb, .country = "US",
       .location = kUsWest, .hosts = {"yelp.com", "yelpcdn.com"}});
  add({.name = "zillow", .category = Category::kWeb, .country = "US",
       .location = kUsWest, .hosts = {"zillow.com"}});
  add({.name = "ebay", .category = Category::kShopping, .country = "US",
       .location = kUsWest, .hosts = {"ebay.com", "ebaystatic.com"}});
  add({.name = "etsy", .category = Category::kShopping, .country = "US",
       .location = kUsEast, .hosts = {"etsy.com", "etsystatic.com"}});
  add({.name = "walmart", .category = Category::kShopping, .country = "US",
       .location = kUsCentral, .hosts = {"walmart.com", "walmartimages.com"}});
  add({.name = "instacart", .category = Category::kShopping, .country = "US",
       .location = kUsWest, .hosts = {"instacart.com"}});
  add({.name = "doordash", .category = Category::kShopping, .country = "US",
       .location = kUsWest, .hosts = {"doordash.com"}});

  // --- IoT backends (device heartbeats / streaming sticks) ------------------
  add({.name = "roku", .category = Category::kIotBackend, .country = "US",
       .location = kUsWest, .hosts = {"roku.com", "rokucdn.com", "logs.roku.com"}});
  add({.name = "samsung-tv", .category = Category::kIotBackend, .country = "US",
       .location = kUsEast, .hosts = {"samsungcloudsolution.com", "samsungotn.net", "samsungqbe.com"}});
  add({.name = "lg-tv", .category = Category::kIotBackend, .country = "US",
       .location = kUsEast, .hosts = {"lgtvsdp.com", "lgappstv.com"}});
  add({.name = "tplink", .category = Category::kIotBackend, .country = "US",
       .location = kUsWest, .hosts = {"tplinkcloud.com", "tplinkra.com"}});
  add({.name = "wyze", .category = Category::kIotBackend, .country = "US",
       .location = kUsWest, .hosts = {"wyzecam.com", "wyze.com"}});
  add({.name = "sonos", .category = Category::kIotBackend, .country = "US",
       .location = kUsEast, .hosts = {"sonos.com", "ws.sonos.com"}});
  add({.name = "hue", .category = Category::kIotBackend, .country = "NL",
       .location = {52.37, 4.90}, .hosts = {"meethue.com", "dcp.cpp.philips.com"}});
  add({.name = "tuya", .category = Category::kIotBackend, .country = "US",
       .location = kUsWest, .hosts = {"tuyaus.com", "tuyacn.com"}});
  add({.name = "espressif", .category = Category::kIotBackend, .country = "US",
       .location = kUsWest, .hosts = {"espressif.cn", "otaupdate.espressif.com"}});

  // --- Foreign services (international-student traffic) ---------------------
  // China
  add({.name = "wechat", .category = Category::kMessaging, .country = "CN",
       .location = kShenzhen, .hosts = {"weixin.qq.com", "wechat.com", "wx.qq.com"}});
  add({.name = "qq", .category = Category::kMessaging, .country = "CN",
       .location = kShenzhen, .hosts = {"qq.com", "gtimg.com", "qpic.cn"}});
  add({.name = "bilibili", .category = Category::kStreaming, .country = "CN",
       .location = kShanghai, .hosts = {"bilibili.com", "bilivideo.com", "hdslb.com"},
       .prefix_len = 20});
  add({.name = "iqiyi", .category = Category::kStreaming, .country = "CN",
       .location = kBeijing, .hosts = {"iqiyi.com", "qiyipic.com"}});
  add({.name = "youku", .category = Category::kStreaming, .country = "CN",
       .location = kHangzhou, .hosts = {"youku.com", "ykimg.com"}});
  add({.name = "baidu", .category = Category::kSearch, .country = "CN",
       .location = kBeijing, .hosts = {"baidu.com", "bdstatic.com"}});
  add({.name = "weibo", .category = Category::kSocialMedia, .country = "CN",
       .location = kBeijing, .hosts = {"weibo.com", "weibo.cn", "sinaimg.cn"}});
  add({.name = "douyin", .category = Category::kSocialMedia, .country = "CN",
       .location = kBeijing, .hosts = {"douyin.com", "douyinpic.com", "amemv.com"}});
  add({.name = "zhihu", .category = Category::kSocialMedia, .country = "CN",
       .location = kBeijing, .hosts = {"zhihu.com", "zhimg.com"}});
  add({.name = "taobao", .category = Category::kShopping, .country = "CN",
       .location = kHangzhou, .hosts = {"taobao.com", "alicdn.com", "tmall.com"}});
  add({.name = "jd", .category = Category::kShopping, .country = "CN",
       .location = kBeijing, .hosts = {"jd.com", "360buyimg.com"}});
  add({.name = "netease", .category = Category::kWeb, .country = "CN",
       .location = kHangzhou, .hosts = {"163.com", "126.net", "netease.com"}});
  add({.name = "tencent-games", .category = Category::kGamingPc, .country = "CN",
       .location = kShenzhen, .hosts = {"tencentgames.com", "gcloud.qq.com"}});
  // Korea
  add({.name = "naver", .category = Category::kSearch, .country = "KR",
       .location = kSeoul, .hosts = {"naver.com", "pstatic.net"}});
  add({.name = "kakao", .category = Category::kMessaging, .country = "KR",
       .location = kSeoul, .hosts = {"kakao.com", "kakaocdn.net"}});
  add({.name = "daum", .category = Category::kWeb, .country = "KR",
       .location = kSeoul, .hosts = {"daum.net", "daumcdn.net"}});
  // Japan
  add({.name = "line", .category = Category::kMessaging, .country = "JP",
       .location = kTokyo, .hosts = {"line.me", "line-scdn.net"}});
  add({.name = "nicovideo", .category = Category::kStreaming, .country = "JP",
       .location = kTokyo, .hosts = {"nicovideo.jp", "nimg.jp"}});
  add({.name = "rakuten", .category = Category::kShopping, .country = "JP",
       .location = kTokyo, .hosts = {"rakuten.co.jp", "r10s.jp"}});
  add({.name = "yahoo-japan", .category = Category::kWeb, .country = "JP",
       .location = kTokyo, .hosts = {"yahoo.co.jp", "yimg.jp"}});
  // India
  add({.name = "hotstar", .category = Category::kStreaming, .country = "IN",
       .location = kMumbai, .hosts = {"hotstar.com", "hotstarext.com"}});
  add({.name = "flipkart", .category = Category::kShopping, .country = "IN",
       .location = kMumbai, .hosts = {"flipkart.com", "flixcart.com"}});
  add({.name = "indiatimes", .category = Category::kNews, .country = "IN",
       .location = kMumbai, .hosts = {"indiatimes.com", "timesofindia.com"}});
  // Europe / rest of world
  add({.name = "bbc", .category = Category::kNews, .country = "GB",
       .location = kLondon, .hosts = {"bbc.co.uk", "bbci.co.uk", "bbc.com"}});
  add({.name = "spiegel", .category = Category::kNews, .country = "DE",
       .location = kFrankfurt, .hosts = {"spiegel.de"}});
  add({.name = "lemonde", .category = Category::kNews, .country = "FR",
       .location = kParis, .hosts = {"lemonde.fr"}});
  add({.name = "vk", .category = Category::kSocialMedia, .country = "RU",
       .location = kMoscow, .hosts = {"vk.com", "userapi.com"}});
  add({.name = "yandex", .category = Category::kSearch, .country = "RU",
       .location = kMoscow, .hosts = {"yandex.ru", "yastatic.net"}});
  add({.name = "globo", .category = Category::kNews, .country = "BR",
       .location = kSaoPaulo, .hosts = {"globo.com", "glbimg.com"}});
  add({.name = "televisa", .category = Category::kNews, .country = "MX",
       .location = kMexicoCity, .hosts = {"televisa.com"}});
  add({.name = "shopee", .category = Category::kShopping, .country = "SG",
       .location = kSingapore, .hosts = {"shopee.sg", "shopeemobile.com"}});
  add({.name = "zalo", .category = Category::kMessaging, .country = "VN",
       .location = kHanoi, .hosts = {"zalo.me", "zadn.vn"}});
  add({.name = "aljazeera", .category = Category::kNews, .country = "QA",
       .location = kDoha, .hosts = {"aljazeera.com", "aljazeera.net"}});
  add({.name = "cbc", .category = Category::kNews, .country = "CA",
       .location = kToronto, .hosts = {"cbc.ca"}});

  // --- CDNs: excluded from the geolocation midpoint (§4.2) ------------------
  // CDN edges serve from near the user, so their location reflects the
  // device, not the visited site. Located at San Diego to model that.
  add({.name = "akamai", .category = Category::kCdn, .country = "US",
       .location = kSanDiego, .hosts = {"akamaized.net", "akamaihd.net", "akamai.net"},
       .is_cdn = true, .prefix_len = 20});
  add({.name = "aws", .category = Category::kCdn, .country = "US",
       .location = kSanDiego, .hosts = {"amazonaws.com", "awsstatic.com"},
       .is_cdn = true, .prefix_len = 20});
  add({.name = "cloudfront", .category = Category::kCdn, .country = "US",
       .location = kSanDiego, .hosts = {"cloudfront.net"},
       .is_cdn = true, .prefix_len = 20});
  add({.name = "optimizely", .category = Category::kCdn, .country = "US",
       .location = kSanDiego, .hosts = {"optimizely.com", "optimizelyapis.com"},
       .is_cdn = true});

  // --- Networks excluded from the tap (§3) -----------------------------------
  // "excluded networks include parts of UC San Diego, Google Cloud, Amazon,
  //  Microsoft Azure, Riot Games, Twitch, Qualys, and Apple."
  add({.name = "ucsd-internal", .category = Category::kExcluded, .country = "US",
       .location = kSanDiego, .hosts = {"ucsd.edu", "ucsd.cloud"},
       .tap_excluded = true});
  add({.name = "google-cloud", .category = Category::kExcluded, .country = "US",
       .location = kUsWest, .hosts = {"googleusercontent.com", "cloud.google.com", "gcp.gvt2.com"},
       .tap_excluded = true, .prefix_len = 20});
  add({.name = "amazon-retail", .category = Category::kExcluded, .country = "US",
       .location = kUsWest, .hosts = {"amazon.com", "media-amazon.com", "primevideo.com"},
       .tap_excluded = true, .prefix_len = 20});
  add({.name = "azure", .category = Category::kExcluded, .country = "US",
       .location = kUsCentral, .hosts = {"azure.com", "microsoft.com", "windowsupdate.com",
                                         "office365.com", "xboxlive.com"},
       .tap_excluded = true, .prefix_len = 20});
  add({.name = "riot", .category = Category::kExcluded, .country = "US",
       .location = kUsWest, .hosts = {"riotgames.com", "leagueoflegends.com"},
       .tap_excluded = true});
  add({.name = "twitch", .category = Category::kExcluded, .country = "US",
       .location = kUsWest, .hosts = {"twitch.tv", "ttvnw.net", "jtvnw.net"},
       .tap_excluded = true});
  add({.name = "qualys", .category = Category::kExcluded, .country = "US",
       .location = kUsWest, .hosts = {"qualys.com"}, .tap_excluded = true});
  add({.name = "apple", .category = Category::kExcluded, .country = "US",
       .location = kUsWest, .hosts = {"apple.com", "icloud.com", "mzstatic.com",
                                      "apple-dns.net", "aaplimg.com"},
       .tap_excluded = true, .prefix_len = 20});

  // --- Long tail of small web sites -----------------------------------------
  // Campus browsing reaches far more than the name-brand services above; the
  // long tail is what makes the paper's "34% more distinct sites" (§4.1)
  // measurable rather than saturating after a week of browsing.
  struct TailRegion {
    const char* cc;
    GeoPoint loc;
    int count;
  };
  static constexpr TailRegion kTailRegions[] = {
      {"US", kUsCentral, 120}, {"CN", kShanghai, 14}, {"KR", kSeoul, 6},
      {"JP", kTokyo, 6},       {"IN", kMumbai, 6},    {"GB", kLondon, 4},
      {"DE", kFrankfurt, 4},   {"FR", kParis, 3},     {"RU", kMoscow, 3},
      {"BR", kSaoPaulo, 3},    {"MX", kMexicoCity, 3}, {"SG", kSingapore, 2},
      {"VN", kHanoi, 2},       {"QA", kDoha, 2},      {"CA", kToronto, 2},
  };
  // Generated names need stable storage: ServiceSpec holds string_views.
  static std::vector<std::string> tail_storage;
  if (tail_storage.empty()) {
    std::size_t total = 0;
    for (const TailRegion& r : kTailRegions) total += r.count;
    tail_storage.reserve(total * 2);  // never reallocates afterwards
    for (const TailRegion& r : kTailRegions) {
      for (int i = 0; i < r.count; ++i) {
        char name[32];
        char host[48];
        std::snprintf(name, sizeof(name), "web-%c%c-%03d",
                      std::tolower(r.cc[0]), std::tolower(r.cc[1]), i);
        std::snprintf(host, sizeof(host), "www.%c%c-site-%03d.net",
                      std::tolower(r.cc[0]), std::tolower(r.cc[1]), i);
        tail_storage.emplace_back(name);
        tail_storage.emplace_back(host);
      }
    }
  }
  std::size_t slot = 0;
  for (const TailRegion& r : kTailRegions) {
    for (int i = 0; i < r.count; ++i) {
      const std::string_view name = tail_storage[slot];
      const std::string_view host = tail_storage[slot + 1];
      slot += 2;
      add({.name = name,
           .category = Category::kWeb,
           .country = r.cc,
           .location = r.loc,
           .hosts = {host},
           .prefix_len = 26});
    }
  }

  return s;
}

const std::vector<ServiceSpec>& DefaultSpecsStorage() {
  static const std::vector<ServiceSpec> specs = BuildDefaultSpecs();
  return specs;
}

}  // namespace

std::span<const ServiceSpec> DefaultServiceSpecs() { return DefaultSpecsStorage(); }

ServiceCatalog::ServiceCatalog(std::span<const ServiceSpec> specs,
                               net::Cidr super_block) {
  if (specs.size() >= kInvalidService) {
    throw std::invalid_argument("ServiceCatalog: too many services");
  }
  net::SubnetCarver carver(super_block);
  services_.reserve(specs.size());
  for (const ServiceSpec& spec : specs) {
    Service svc;
    svc.name = std::string(spec.name);
    svc.category = spec.category;
    svc.country = std::string(spec.country);
    svc.location = spec.location;
    for (std::string_view h : spec.hosts) svc.hosts.emplace_back(h);
    svc.is_cdn = spec.is_cdn;
    svc.tap_excluded = spec.tap_excluded;
    svc.dns_less = spec.dns_less;
    svc.block = carver.Carve(spec.prefix_len);
    services_.push_back(std::move(svc));
  }
  for (ServiceId id = 0; id < services_.size(); ++id) {
    const Service& svc = services_[id];
    if (!by_name_.emplace(svc.name, id).second) {
      throw std::invalid_argument("ServiceCatalog: duplicate name " + svc.name);
    }
    for (const std::string& host : svc.hosts) {
      if (!by_host_suffix_.emplace(host, id).second) {
        throw std::invalid_argument("ServiceCatalog: duplicate host " + host);
      }
    }
    blocks_.emplace_back(svc.block, id);
  }
  std::sort(blocks_.begin(), blocks_.end(),
            [](const auto& a, const auto& b) { return a.first.base() < b.first.base(); });
}

const ServiceCatalog& ServiceCatalog::Default() {
  static const ServiceCatalog catalog{DefaultServiceSpecs()};
  return catalog;
}

std::optional<ServiceId> ServiceCatalog::FindByName(std::string_view name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<ServiceId> ServiceCatalog::FindByHost(std::string_view host) const {
  // Walk suffixes at label boundaries: "a.b.zoom.us" tries itself, then
  // "b.zoom.us", then "zoom.us", then "us".
  std::string_view rest = host;
  for (;;) {
    const auto it = by_host_suffix_.find(rest);
    if (it != by_host_suffix_.end()) return it->second;
    const auto dot = rest.find('.');
    if (dot == std::string_view::npos) return std::nullopt;
    rest = rest.substr(dot + 1);
  }
}

std::optional<ServiceId> ServiceCatalog::FindByIp(net::Ipv4Address ip) const {
  // Last block with base <= ip; blocks are disjoint by construction.
  auto pos = std::upper_bound(
      blocks_.begin(), blocks_.end(), ip,
      [](net::Ipv4Address v, const auto& entry) { return v < entry.first.base(); });
  if (pos == blocks_.begin()) return std::nullopt;
  --pos;
  if (pos->first.Contains(ip)) return pos->second;
  return std::nullopt;
}

std::vector<net::Ipv4Address> ServiceCatalog::ResolveHost(std::string_view host) const {
  const auto id = FindByHost(host);
  if (!id) return {};
  const Service& svc = services_[*id];
  if (svc.dns_less) return {};
  // Each hostname gets four stable addresses spread over the service block.
  constexpr int kAddressesPerHost = 4;
  const std::uint64_t usable = svc.block.size() - 2;
  std::vector<net::Ipv4Address> out;
  out.reserve(kAddressesPerHost);
  const std::uint64_t base = util::Fnv1a64(host);
  for (int i = 0; i < kAddressesPerHost; ++i) {
    const std::uint64_t index =
        1 + (base * 2654435761ULL + static_cast<std::uint64_t>(i) * 40503ULL) % usable;
    out.push_back(svc.block.At(index));
  }
  return out;
}

}  // namespace lockdown::world
