// The service catalog: lookup by name, by hostname suffix, and by address,
// plus the DNS authority over every catalogued hostname.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "world/service.h"

namespace lockdown::world {

class ServiceCatalog {
 public:
  /// Builds a catalog from specs, carving each service's address block out of
  /// `super_block` (default 64.0.0.0/10 — fictional public space disjoint
  /// from the campus client pools).
  explicit ServiceCatalog(std::span<const ServiceSpec> specs,
                          net::Cidr super_block = *net::Cidr::Parse("64.0.0.0/10"));

  /// The built-in catalog modelling the services named in the paper plus a
  /// long tail of domestic and foreign sites. Built once, thread-safe after
  /// construction.
  [[nodiscard]] static const ServiceCatalog& Default();

  [[nodiscard]] const Service& Get(ServiceId id) const { return services_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return services_.size(); }
  [[nodiscard]] const std::vector<Service>& services() const noexcept {
    return services_;
  }

  /// Service with the exact given name.
  [[nodiscard]] std::optional<ServiceId> FindByName(std::string_view name) const;

  /// Service owning `host` (exact hostname or any subdomain of a catalogued
  /// name). Follows DNS label boundaries.
  [[nodiscard]] std::optional<ServiceId> FindByHost(std::string_view host) const;

  /// Service whose block contains `ip`.
  [[nodiscard]] std::optional<ServiceId> FindByIp(net::Ipv4Address ip) const;

  /// Authoritative resolution: address set for a catalogued hostname
  /// (several stable addresses per name, spread over the service block).
  /// Empty if the host is unknown or the service is DNS-less.
  [[nodiscard]] std::vector<net::Ipv4Address> ResolveHost(std::string_view host) const;

 private:
  std::vector<Service> services_;
  std::unordered_map<std::string_view, ServiceId> by_name_;
  // Host suffixes mapped to owning service; lookup walks label boundaries.
  std::unordered_map<std::string_view, ServiceId> by_host_suffix_;
  // Blocks sorted by base address for binary-search containment lookup.
  std::vector<std::pair<net::Cidr, ServiceId>> blocks_;
};

/// The specs behind ServiceCatalog::Default(); exposed so tests and docs can
/// enumerate the modelled world.
[[nodiscard]] std::span<const ServiceSpec> DefaultServiceSpecs();

}  // namespace lockdown::world
