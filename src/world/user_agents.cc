#include "world/user_agents.h"

#include <array>

namespace lockdown::world {

namespace {

constexpr std::array<std::string_view, 3> kWindows = {
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like "
    "Gecko) Chrome/80.0.3987.132 Safari/537.36",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:73.0) Gecko/20100101 "
    "Firefox/73.0",
    "Mozilla/5.0 (Windows NT 6.1; Win64; x64) AppleWebKit/537.36 (KHTML, like "
    "Gecko) Chrome/79.0.3945.130 Safari/537.36",
};

constexpr std::array<std::string_view, 3> kMac = {
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_3) AppleWebKit/605.1.15 "
    "(KHTML, like Gecko) Version/13.0.5 Safari/605.1.15",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_14_6) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/80.0.3987.122 Safari/537.36",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_2) Gecko/20100101 "
    "Firefox/72.0",
};

constexpr std::array<std::string_view, 2> kLinux = {
    "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) "
    "Chrome/80.0.3987.106 Safari/537.36",
    "Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:73.0) Gecko/20100101 "
    "Firefox/73.0",
};

constexpr std::array<std::string_view, 3> kIphone = {
    "Mozilla/5.0 (iPhone; CPU iPhone OS 13_3_1 like Mac OS X) "
    "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/13.0.5 Mobile/15E148 "
    "Safari/604.1",
    "Mozilla/5.0 (iPhone; CPU iPhone OS 13_3 like Mac OS X) "
    "AppleWebKit/605.1.15 (KHTML, like Gecko) Mobile/15E148 Instagram "
    "128.0.0.26.128",
    "TikTok 15.5.0 rv:155012 (iPhone; iOS 13.3.1; en_US) Cronet",
};

constexpr std::array<std::string_view, 2> kIpad = {
    "Mozilla/5.0 (iPad; CPU OS 13_3 like Mac OS X) AppleWebKit/605.1.15 "
    "(KHTML, like Gecko) Version/13.0.4 Mobile/15E148 Safari/604.1",
    "Mozilla/5.0 (iPad; CPU OS 12_4_5 like Mac OS X) AppleWebKit/605.1.15 "
    "(KHTML, like Gecko) Mobile/15E148",
};

constexpr std::array<std::string_view, 3> kAndroid = {
    "Mozilla/5.0 (Linux; Android 10; SM-G975F) AppleWebKit/537.36 (KHTML, "
    "like Gecko) Chrome/80.0.3987.99 Mobile Safari/537.36",
    "Mozilla/5.0 (Linux; Android 9; Pixel 3) AppleWebKit/537.36 (KHTML, like "
    "Gecko) Chrome/79.0.3945.136 Mobile Safari/537.36",
    "com.zhiliaoapp.musically/2021605050 (Linux; U; Android 10; en_US; "
    "Pixel 4; Build/QQ1B.200205.002; Cronet/TTNetVersion:8109b1ab 2020-01-13)",
};

constexpr std::array<std::string_view, 3> kSmartTv = {
    "Mozilla/5.0 (SMART-TV; Linux; Tizen 5.0) AppleWebKit/537.36 (KHTML, like "
    "Gecko) Version/5.0 TV Safari/537.36",
    "Roku/DVP-9.10 (519.10E04111A)",
    "Mozilla/5.0 (Web0S; Linux/SmartTV) AppleWebKit/537.36 (KHTML, like "
    "Gecko) Chrome/53.0.2785.34 Safari/537.36 WebAppManager",
};

constexpr std::array<std::string_view, 3> kConsole = {
    "Mozilla/5.0 (Nintendo Switch; WifiWebAuthApplet) AppleWebKit/606.4 "
    "(KHTML, like Gecko) NF/6.0.1.15.4 NintendoBrowser/5.1.0.20393",
    "Mozilla/5.0 (PlayStation 4 7.02) AppleWebKit/605.1.15 (KHTML, like "
    "Gecko)",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64; Xbox; Xbox One) "
    "AppleWebKit/537.36 (KHTML, like Gecko) Edge/44.18363.8131",
};

}  // namespace

std::span<const std::string_view> UserAgentsFor(UaPlatform p) noexcept {
  switch (p) {
    case UaPlatform::kWindowsDesktop: return kWindows;
    case UaPlatform::kMacDesktop: return kMac;
    case UaPlatform::kLinuxDesktop: return kLinux;
    case UaPlatform::kIphone: return kIphone;
    case UaPlatform::kIpad: return kIpad;
    case UaPlatform::kAndroidPhone: return kAndroid;
    case UaPlatform::kSmartTv: return kSmartTv;
    case UaPlatform::kGameConsole: return kConsole;
  }
  return {};
}

}  // namespace lockdown::world
