// OUI (MAC vendor prefix) registry.
//
// The paper's device classifier reads "organizationally unique identifiers
// (OUIs) extracted from traffic data" (§3). This is the registry it consults:
// a curated subset of IEEE assignments for the vendors that matter on a
// residential campus network, each annotated with the device-class hint the
// classifier derives from it.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/mac.h"

namespace lockdown::world {

/// What a vendor prefix suggests about the device.
enum class VendorHint : std::uint8_t {
  kComputer,         ///< laptop/desktop vendor (Dell, HP, ...)
  kPhone,            ///< phone vendor line (Samsung mobile, ...)
  kComputerOrPhone,  ///< vendor ships both (Apple) — OUI alone is ambiguous
  kIot,              ///< embedded/IoT module or appliance vendor
  kNintendo,         ///< Nintendo consoles
  kConsoleOther,     ///< Sony / Microsoft consoles
  kGeneric,          ///< commodity radio modules found in anything
};

[[nodiscard]] const char* ToString(VendorHint h) noexcept;

struct VendorInfo {
  std::string_view vendor;
  VendorHint hint;
};

class OuiDatabase {
 public:
  /// The built-in registry.
  [[nodiscard]] static const OuiDatabase& Default();

  /// Vendor info for a MAC's OUI. Locally-administered (randomized) MACs
  /// never match: their OUI bits are not a vendor assignment.
  [[nodiscard]] std::optional<VendorInfo> Lookup(net::MacAddress mac) const;

  /// True if the MAC has the locally-administered bit set (randomized MAC,
  /// as modern phones use for WiFi privacy).
  [[nodiscard]] static bool IsLocallyAdministered(net::MacAddress mac) noexcept {
    return (mac.value() >> 41) & 1;
  }

  /// All OUIs registered for a vendor hint; used by the simulator to assign
  /// ground-truth-consistent MACs.
  [[nodiscard]] std::vector<std::uint32_t> OuisFor(VendorHint hint) const;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

 private:
  OuiDatabase();
  std::unordered_map<std::uint32_t, VendorInfo> table_;
};

}  // namespace lockdown::world
