// Service model of the synthetic Internet.
//
// Every remote endpoint the simulated campus talks to belongs to a named
// service with a category, a serving country/location (for the geolocation
// analysis), a set of DNS hostnames, and an IPv4 block. The catalog is the
// single source of truth that the DNS authority, the geolocation database,
// the tap exclusion list, and the application signatures are all derived
// from — mirroring how the paper derives its per-application views from
// public domain/IP lists.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.h"

namespace lockdown::world {

/// Broad behavioural category of a service; personas choose activity by
/// category, analyses group by it.
enum class Category : std::uint8_t {
  kVideoConferencing,
  kSocialMedia,
  kMessaging,
  kStreaming,
  kMusic,
  kGamingPc,
  kGamingConsole,
  kEducation,
  kWeb,
  kNews,
  kShopping,
  kSearch,
  kEmailCloud,
  kIotBackend,
  kCdn,
  kExcluded,  ///< networks the campus tap does not mirror
};

[[nodiscard]] const char* ToString(Category c) noexcept;

/// Geographic coordinates in degrees.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Stable index of a service within its catalog.
using ServiceId = std::uint16_t;
inline constexpr ServiceId kInvalidService = 0xFFFF;

/// Static description of one service, as written in the catalog table.
struct ServiceSpec {
  std::string_view name;
  Category category = Category::kWeb;
  std::string_view country;  ///< ISO 3166-1 alpha-2
  GeoPoint location;
  std::vector<std::string_view> hosts;  ///< DNS names (suffix-matched)
  bool is_cdn = false;        ///< excluded from geolocation midpoints (§4.2)
  bool tap_excluded = false;  ///< traffic never reaches the tap (§3)
  bool dns_less = false;      ///< contacted by raw IP (e.g. Zoom media relays)
  int prefix_len = 22;        ///< size of the service's IPv4 block
};

/// A service after catalog construction: spec fields plus its address block.
struct Service {
  std::string name;
  Category category = Category::kWeb;
  std::string country;
  GeoPoint location;
  std::vector<std::string> hosts;
  bool is_cdn = false;
  bool tap_excluded = false;
  bool dns_less = false;
  net::Cidr block;
};

}  // namespace lockdown::world
