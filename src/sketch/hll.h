// HyperLogLog cardinality estimator (Flajolet et al. 2007).
//
// Used by the streaming study for active-device counts (Figure 1) and the
// distinct-sites headline statistic — the quantities the batch study answers
// with per-day bitmaps and unordered_sets whose size grows with the
// population. A HyperLogLog with 2^p single-byte registers answers the same
// question in fixed space with relative standard error ~1.04/sqrt(2^p).
//
// Determinism: items are hashed with SipHash-2-4 under a key derived from an
// explicit seed, and Merge takes the register-wise maximum — idempotent,
// associative, and commutative, so any merge order (or none: feeding one
// sketch serially) yields bit-identical registers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sketch/sketch.h"

namespace lockdown::sketch {

class HyperLogLog {
 public:
  static constexpr int kMinPrecision = 4;
  static constexpr int kMaxPrecision = 16;

  /// `precision` p in [4, 16] gives m = 2^p registers (m bytes of state).
  /// Throws std::invalid_argument outside that range.
  HyperLogLog(int precision, util::SipHashKey key);

  /// Convenience: key derived from (seed, stream) via DeriveKey.
  [[nodiscard]] static HyperLogLog Seeded(int precision, std::uint64_t seed,
                                          std::uint64_t stream = 0);

  /// Adds one item (callers hash identity into 64 bits; equal values are the
  /// same item).
  void Add(std::uint64_t item) noexcept;

  /// Cardinality estimate with the standard small-range (linear counting)
  /// correction.
  [[nodiscard]] double Estimate() const noexcept;

  /// Register-wise max. Throws MergeError unless precision and key match.
  void Merge(const HyperLogLog& other);

  /// The sketch's a-priori relative standard error: 1.04 / sqrt(m).
  [[nodiscard]] double RelativeStandardError() const noexcept;

  [[nodiscard]] int precision() const noexcept { return precision_; }
  [[nodiscard]] std::span<const std::uint8_t> registers() const noexcept {
    return registers_;
  }
  [[nodiscard]] std::size_t MemoryBytes() const noexcept {
    return registers_.size() + sizeof(*this);
  }

  /// Fraction of registers holding a nonzero rank, in [0, 1]. A fill ratio
  /// near 0 means the precision budget is oversized for the stream.
  [[nodiscard]] double FillRatio() const noexcept;

 private:
  int precision_;
  util::SipHashKey key_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace lockdown::sketch
