#include "sketch/hll.h"

#include <bit>
#include <cmath>

namespace lockdown::sketch {

namespace {

/// Bias-correction constant alpha_m (Flajolet et al., Fig. 3).
double AlphaM(std::size_t m) noexcept {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision, util::SipHashKey key)
    : precision_(precision), key_(key) {
  if (precision < kMinPrecision || precision > kMaxPrecision) {
    throw std::invalid_argument("HyperLogLog precision must be in [4, 16]");
  }
  registers_.assign(std::size_t{1} << precision, 0);
}

HyperLogLog HyperLogLog::Seeded(int precision, std::uint64_t seed,
                                std::uint64_t stream) {
  return HyperLogLog(precision, DeriveKey(seed, stream));
}

void HyperLogLog::Add(std::uint64_t item) noexcept {
  const std::uint64_t h = util::SipHash24(key_, item);
  const std::size_t index = static_cast<std::size_t>(h >> (64 - precision_));
  // Rank of the first set bit in the remaining 64-p bits, 1-based; an
  // all-zero remainder ranks 64-p+1.
  const std::uint64_t rest = h << precision_;
  const int rank =
      rest == 0 ? 64 - precision_ + 1 : std::countl_zero(rest) + 1;
  if (registers_[index] < rank) {
    registers_[index] = static_cast<std::uint8_t>(rank);
  }
}

double HyperLogLog::Estimate() const noexcept {
  const auto m = static_cast<double>(registers_.size());
  double inverse_sum = 0.0;
  std::size_t zeros = 0;
  for (const std::uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    zeros += reg == 0;
  }
  const double raw = AlphaM(registers_.size()) * m * m / inverse_sum;
  if (raw <= 2.5 * m && zeros != 0) {
    // Small-range correction: linear counting over empty registers.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  if (precision_ != other.precision_ || !SameKey(key_, other.key_)) {
    throw MergeError("HyperLogLog merge: precision/seed mismatch");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (registers_[i] < other.registers_[i]) registers_[i] = other.registers_[i];
  }
}

double HyperLogLog::RelativeStandardError() const noexcept {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

double HyperLogLog::FillRatio() const noexcept {
  if (registers_.empty()) return 0.0;
  std::size_t nonzero = 0;
  for (const std::uint8_t r : registers_) nonzero += r != 0;
  return static_cast<double>(nonzero) / static_cast<double>(registers_.size());
}

}  // namespace lockdown::sketch
