#include "sketch/reservoir.h"

#include <algorithm>
#include <bit>

namespace lockdown::sketch {

ReservoirSample::ReservoirSample(std::size_t capacity, util::SipHashKey key)
    : capacity_(capacity), key_(key) {
  if (capacity == 0) {
    throw std::invalid_argument("ReservoirSample capacity must be positive");
  }
}

ReservoirSample ReservoirSample::Seeded(std::size_t capacity,
                                        std::uint64_t seed,
                                        std::uint64_t stream) {
  return ReservoirSample(capacity, DeriveKey(seed, stream));
}

bool ReservoirSample::EntryLess(const Entry& a, const Entry& b) noexcept {
  if (a.priority != b.priority) return a.priority < b.priority;
  if (a.key != b.key) return a.key < b.key;
  // Compare values by bit pattern: a total order (unlike operator< on
  // doubles), which keeps the kept set well-defined even for NaN payloads.
  return std::bit_cast<std::uint64_t>(a.value) <
         std::bit_cast<std::uint64_t>(b.value);
}

void ReservoirSample::Offer(const Entry& entry) {
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    std::push_heap(entries_.begin(), entries_.end(), EntryLess);
    return;
  }
  // Full: keep the k smallest. Replace the current maximum iff the new entry
  // is strictly smaller, so duplicates resolve identically in any order.
  if (EntryLess(entry, entries_.front())) {
    std::pop_heap(entries_.begin(), entries_.end(), EntryLess);
    entries_.back() = entry;
    std::push_heap(entries_.begin(), entries_.end(), EntryLess);
  }
}

void ReservoirSample::Add(std::uint64_t item_key, double value) {
  Offer(Entry{util::SipHash24(key_, item_key), item_key, value});
  ++seen_;
}

void ReservoirSample::Merge(const ReservoirSample& other) {
  if (capacity_ != other.capacity_ || !SameKey(key_, other.key_)) {
    throw MergeError("ReservoirSample merge: capacity/seed mismatch");
  }
  for (const Entry& entry : other.entries_) {
    Offer(entry);
  }
  seen_ += other.seen_;
}

std::vector<double> ReservoirSample::Values() const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  std::vector<double> values;
  values.reserve(sorted.size());
  for (const Entry& entry : sorted) values.push_back(entry.value);
  return values;
}

std::vector<ReservoirSample::Entry> ReservoirSample::SortedEntries() const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), EntryLess);
  return sorted;
}

}  // namespace lockdown::sketch
