// Count-min sketch (Cormode & Muthukrishnan 2005) over uint64 counters.
//
// The streaming study uses it for per-domain and per-category byte volumes:
// the batch study keeps an exact counter per interned domain, which grows
// with the vocabulary; the sketch answers point queries in width*depth fixed
// cells with a one-sided guarantee — estimates never undercount, and
// overshoot by more than epsilon * total with probability at most delta.
//
// Counters are uint64, so Add and Merge are exact integer arithmetic:
// associative, commutative, and overflow-free for any realistic byte volume.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch.h"

namespace lockdown::sketch {

class CountMinSketch {
 public:
  /// `width` cells per row, `depth` independent rows. Each row hashes with
  /// its own SipHash key derived from (seed, stream + row). Throws
  /// std::invalid_argument if either dimension is zero.
  CountMinSketch(std::size_t width, std::size_t depth, std::uint64_t seed,
                 std::uint64_t stream = 0);

  /// Sizes the sketch for the classic (epsilon, delta) guarantee:
  /// width = ceil(e / epsilon), depth = ceil(ln(1 / delta)).
  [[nodiscard]] static CountMinSketch FromErrorBound(double epsilon,
                                                     double delta,
                                                     std::uint64_t seed,
                                                     std::uint64_t stream = 0);

  void Add(std::uint64_t key, std::uint64_t count) noexcept;

  /// Point query: min over rows. Never less than the true count; at most
  /// true + epsilon() * total() with probability >= 1 - delta().
  [[nodiscard]] std::uint64_t Estimate(std::uint64_t key) const noexcept;

  /// Cell-wise sum. Throws MergeError unless dimensions and seed match.
  void Merge(const CountMinSketch& other);

  /// The guarantee implied by the actual dimensions: epsilon = e / width,
  /// delta = exp(-depth).
  [[nodiscard]] double epsilon() const noexcept;
  [[nodiscard]] double delta() const noexcept;

  /// Total weight added (sum of all Add counts).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t MemoryBytes() const noexcept {
    return cells_.size() * sizeof(std::uint64_t) + sizeof(*this) +
           row_keys_.size() * sizeof(util::SipHashKey);
  }

  /// Fraction of nonzero cells, in [0, 1]. High fill means heavy hash
  /// collision pressure and a looser practical overestimate.
  [[nodiscard]] double FillRatio() const noexcept;

 private:
  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t total_ = 0;
  std::vector<util::SipHashKey> row_keys_;
  std::vector<std::uint64_t> cells_;  // row-major depth_ x width_
};

}  // namespace lockdown::sketch
