#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lockdown::sketch {

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed, std::uint64_t stream)
    : width_(width), depth_(depth), seed_(seed), stream_(stream) {
  if (width == 0 || depth == 0) {
    throw std::invalid_argument("CountMinSketch width/depth must be positive");
  }
  row_keys_.reserve(depth);
  for (std::size_t row = 0; row < depth; ++row) {
    row_keys_.push_back(DeriveKey(seed, stream + row));
  }
  cells_.assign(width * depth, 0);
}

CountMinSketch CountMinSketch::FromErrorBound(double epsilon, double delta,
                                              std::uint64_t seed,
                                              std::uint64_t stream) {
  if (!(epsilon > 0.0 && epsilon < 1.0) || !(delta > 0.0 && delta < 1.0)) {
    throw std::invalid_argument(
        "CountMinSketch error bounds must lie in (0, 1)");
  }
  const auto width =
      static_cast<std::size_t>(std::ceil(std::exp(1.0) / epsilon));
  const auto depth = static_cast<std::size_t>(std::ceil(-std::log(delta)));
  return CountMinSketch(width, std::max<std::size_t>(depth, 1), seed, stream);
}

void CountMinSketch::Add(std::uint64_t key, std::uint64_t count) noexcept {
  for (std::size_t row = 0; row < depth_; ++row) {
    const std::size_t col = util::SipHash24(row_keys_[row], key) % width_;
    cells_[row * width_ + col] += count;
  }
  total_ += count;
}

std::uint64_t CountMinSketch::Estimate(std::uint64_t key) const noexcept {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t row = 0; row < depth_; ++row) {
    const std::size_t col = util::SipHash24(row_keys_[row], key) % width_;
    best = std::min(best, cells_[row * width_ + col]);
  }
  return best;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_ || stream_ != other.stream_) {
    throw MergeError("CountMinSketch merge: dimension/seed mismatch");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += other.cells_[i];
  }
  total_ += other.total_;
}

double CountMinSketch::epsilon() const noexcept {
  return std::exp(1.0) / static_cast<double>(width_);
}

double CountMinSketch::delta() const noexcept {
  return std::exp(-static_cast<double>(depth_));
}

double CountMinSketch::FillRatio() const noexcept {
  if (cells_.empty()) return 0.0;
  std::size_t nonzero = 0;
  for (const std::uint64_t c : cells_) nonzero += c != 0;
  return static_cast<double>(nonzero) / static_cast<double>(cells_.size());
}

}  // namespace lockdown::sketch
