// Fixed-bin windowed aggregator.
//
// The diurnal and hour-of-week figures are sums over a fixed, known-ahead
// grid (24 five-minute-free bins, 168 hours, 121 days), so "sketching" them
// needs no approximation at all — just a dense vector of doubles with
// elementwise merge. The class exists so the streaming engine can treat
// these curves uniformly with the probabilistic sketches: seeded-free,
// mergeable, memory-accountable.
//
// Exactness: when every Add is integer-valued (byte counts) the accumulated
// sums stay below 2^53 and double addition is exact, hence associative and
// commutative — streaming equals batch bit-for-bit regardless of order.
// Fractional adds (the diurnal spread) are reproduced bit-identically by
// preserving the batch summation order, which the engine does by folding
// per-chunk grids in chunk order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sketch/sketch.h"

namespace lockdown::sketch {

class WindowedAggregator {
 public:
  /// A window of `num_bins` zero-initialised bins. Throws
  /// std::invalid_argument if num_bins is zero.
  explicit WindowedAggregator(std::size_t num_bins);

  /// Adds `v` to `bin`; out-of-range bins are ignored (the streaming engine
  /// clamps flows to the study window before binning, this is a backstop).
  void Add(std::size_t bin, double v) noexcept;

  /// Elementwise sum. Throws MergeError unless bin counts match.
  void Merge(const WindowedAggregator& other);

  [[nodiscard]] double at(std::size_t bin) const { return bins_.at(bin); }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return bins_;
  }
  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t MemoryBytes() const noexcept {
    return bins_.size() * sizeof(double) + sizeof(*this);
  }

 private:
  std::vector<double> bins_;
};

}  // namespace lockdown::sketch
