// Mergeable uniform sample: bottom-k by hashed priority.
//
// The classic Algorithm R reservoir is neither mergeable nor order-
// independent, so this sketch instead assigns every distinct item key a
// pseudorandom priority = SipHash24(seed key, item key) and keeps the k
// entries with the smallest priorities. Because the priority is a pure
// function of the item key, the kept set is a deterministic function of the
// *set* of keys fed in — independent of arrival order and of how the stream
// was split across sketches before merging. Over distinct keys the selection
// is uniform (each key's priority is an independent uniform draw).
//
// The streaming study samples per-(day, class) device byte totals and
// session-length populations with this; item keys are device indices or
// global session ids, which are unique within each reservoir's population,
// so the uniformity guarantee applies directly. When the population is no
// larger than the capacity the sample is the whole population and downstream
// statistics are exact (`exact()` reports this).
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/sketch.h"

namespace lockdown::sketch {

class ReservoirSample {
 public:
  struct Entry {
    std::uint64_t priority;
    std::uint64_t key;
    double value;
  };

  /// Keeps at most `capacity` entries. Throws std::invalid_argument if
  /// capacity is zero.
  ReservoirSample(std::size_t capacity, util::SipHashKey key);

  [[nodiscard]] static ReservoirSample Seeded(std::size_t capacity,
                                              std::uint64_t seed,
                                              std::uint64_t stream = 0);

  /// Offers one (item key, value) pair. Item keys must be unique within the
  /// population for the uniformity guarantee; duplicate keys are retained as
  /// separate entries (they share a priority, so they are kept or evicted
  /// together deterministically, preserving order-independence).
  void Add(std::uint64_t item_key, double value);

  /// Folds another sample drawn with the same capacity and seed.
  /// Throws MergeError on mismatch.
  void Merge(const ReservoirSample& other);

  /// Sampled values sorted by ascending item key — the same order the batch
  /// study visits devices in, so exact samples reproduce batch statistics
  /// bit-for-bit even where downstream code is summation-order-sensitive.
  [[nodiscard]] std::vector<double> Values() const;

  /// Entries sorted by (priority, key); exposed for merge/property tests.
  [[nodiscard]] std::vector<Entry> SortedEntries() const;

  /// Number of Add calls observed (across merges).
  [[nodiscard]] std::uint64_t seen() const noexcept { return seen_; }

  /// True when nothing has been evicted: the sample IS the population.
  [[nodiscard]] bool exact() const noexcept { return seen_ <= capacity_; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t MemoryBytes() const noexcept {
    return entries_.capacity() * sizeof(Entry) + sizeof(*this);
  }
  /// Fraction of capacity in use, in [0, 1]; 1 once the sample is sampling.
  [[nodiscard]] double FillRatio() const noexcept {
    return capacity_ == 0
               ? 0.0
               : static_cast<double>(entries_.size()) /
                     static_cast<double>(capacity_);
  }

 private:
  static bool EntryLess(const Entry& a, const Entry& b) noexcept;
  void Offer(const Entry& entry);

  std::size_t capacity_;
  util::SipHashKey key_;
  std::uint64_t seen_ = 0;
  // Max-heap on EntryLess once at capacity; front() is the eviction candidate.
  std::vector<Entry> entries_;
};

}  // namespace lockdown::sketch
