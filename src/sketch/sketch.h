// Common scaffolding for the bounded-memory sketches.
//
// Every sketch in this library is
//   * deterministic: all hashing is SipHash-2-4 under keys derived from an
//     explicit (seed, stream) pair via util::Pcg32 — the same seed always
//     produces the same sketch state for the same input, on every platform;
//   * mergeable: Merge(other) folds another sketch built with the *same*
//     parameters and seed, and every merge is associative and commutative
//     (proved by tests/sketch/*), so the ParallelFor chunk-ordered merge
//     discipline of the batch study carries over unchanged — and, stronger,
//     the merged state does not depend on merge order at all;
//   * accountable: MemoryBytes() reports the heap footprint so the streaming
//     engine can enforce a hard memory budget instead of asserting one.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/hash.h"
#include "util/rng.h"

namespace lockdown::sketch {

/// Derives a SipHash key for a named sub-sketch. Distinct (seed, stream)
/// pairs give independent hash functions; the derivation goes through Pcg32
/// so the key depends on every bit of the seed.
[[nodiscard]] inline util::SipHashKey DeriveKey(std::uint64_t seed,
                                                std::uint64_t stream) noexcept {
  util::Pcg32 rng(seed, stream);
  const auto next64 = [&rng]() {
    return (static_cast<std::uint64_t>(rng.Next()) << 32) | rng.Next();
  };
  return util::SipHashKey{next64(), next64()};
}

[[nodiscard]] inline bool SameKey(const util::SipHashKey& a,
                                  const util::SipHashKey& b) noexcept {
  return a.k0 == b.k0 && a.k1 == b.k1;
}

/// Thrown when merging sketches with incompatible parameters or seeds.
class MergeError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

}  // namespace lockdown::sketch
