#include "sketch/windowed.h"

namespace lockdown::sketch {

WindowedAggregator::WindowedAggregator(std::size_t num_bins) {
  if (num_bins == 0) {
    throw std::invalid_argument("WindowedAggregator needs at least one bin");
  }
  bins_.assign(num_bins, 0.0);
}

void WindowedAggregator::Add(std::size_t bin, double v) noexcept {
  if (bin < bins_.size()) bins_[bin] += v;
}

void WindowedAggregator::Merge(const WindowedAggregator& other) {
  if (bins_.size() != other.bins_.size()) {
    throw MergeError("WindowedAggregator merge: bin count mismatch");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
}

}  // namespace lockdown::sketch
