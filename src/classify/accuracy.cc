#include "classify/accuracy.h"

#include <algorithm>
#include <numeric>

namespace lockdown::classify {

AccuracyReport EstimateAccuracy(std::span<const LabelledDevice> devices,
                                int sample_size, std::uint64_t seed) {
  AccuracyReport report;
  if (devices.empty()) return report;

  // Partial Fisher-Yates for a uniform sample without replacement.
  std::vector<std::size_t> order(devices.size());
  std::iota(order.begin(), order.end(), 0u);
  util::Pcg32 rng(seed, 0xACC);
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(sample_size), devices.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + rng.NextBounded(static_cast<std::uint32_t>(order.size() - i));
    std::swap(order[i], order[j]);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const LabelledDevice& d = devices[order[i]];
    ++report.sampled;
    if (d.predicted == d.truth) {
      ++report.correct;
    } else if (d.predicted == DeviceClass::kUnknown) {
      ++report.unknown_omissions;
    } else {
      ++report.misclassified;
    }
  }
  return report;
}

}  // namespace lockdown::classify
