#include "classify/iot.h"

#include "util/strings.h"

namespace lockdown::classify {

IotDetector::IotDetector(const world::ServiceCatalog& catalog, double threshold)
    : threshold_(threshold) {
  for (const world::Service& svc : catalog.services()) {
    if (svc.category != world::Category::kIotBackend || svc.hosts.empty()) continue;
    Signature sig;
    sig.platform = svc.name;
    sig.domains = svc.hosts;
    signatures_.push_back(std::move(sig));
  }
}

IotDetector::IotDetector(std::vector<Signature> signatures, double threshold)
    : signatures_(std::move(signatures)), threshold_(threshold) {}

std::optional<IotMatch> IotDetector::Detect(const DeviceObservations& obs) const {
  std::optional<IotMatch> best;
  for (const Signature& sig : signatures_) {
    int hit = 0;
    for (const std::string& domain : sig.domains) {
      for (const auto& [contacted, bytes] : obs.bytes_by_domain) {
        if (util::DomainMatches(contacted, domain)) {
          ++hit;
          break;
        }
      }
    }
    const double score =
        static_cast<double>(hit) / static_cast<double>(sig.domains.size());
    if (score >= threshold_ && (!best || score > best->score)) {
      best = IotMatch{sig.platform, score};
    }
  }
  return best;
}

}  // namespace lockdown::classify
