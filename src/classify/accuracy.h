// Classifier accuracy estimation, mirroring the paper's manual review:
// "we manually reviewed 100 random devices in our dataset and verified that
//  84 were correctly classified... Only two devices in this sample were
//  affirmatively misclassified... the dominant source of error (14 devices)
//  was omission (devices conservatively classified as 'unknown')." (§3)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "classify/classifier.h"
#include "util/rng.h"

namespace lockdown::classify {

struct AccuracyReport {
  int sampled = 0;
  int correct = 0;
  int misclassified = 0;       ///< affirmatively wrong class
  int unknown_omissions = 0;   ///< labelled unclassified but had a true class

  [[nodiscard]] double accuracy() const noexcept {
    return sampled == 0 ? 0.0 : static_cast<double>(correct) / sampled;
  }
};

/// One device's predicted vs. true class (the "manual review" ground truth —
/// in the reproduction, the simulator's device table).
struct LabelledDevice {
  DeviceClass predicted = DeviceClass::kUnknown;
  DeviceClass truth = DeviceClass::kUnknown;
};

/// Samples `sample_size` devices uniformly (deterministic under `seed`) and
/// scores the classifier against ground truth.
[[nodiscard]] AccuracyReport EstimateAccuracy(std::span<const LabelledDevice> devices,
                                              int sample_size, std::uint64_t seed);

}  // namespace lockdown::classify
