#include "classify/classifier.h"

#include <array>

#include "net/mac.h"

namespace lockdown::classify {

const char* ToString(DeviceClass c) noexcept {
  switch (c) {
    case DeviceClass::kMobile: return "mobile";
    case DeviceClass::kLaptopDesktop: return "laptop-desktop";
    case DeviceClass::kIot: return "iot";
    case DeviceClass::kGameConsole: return "game-console";
    case DeviceClass::kUnknown: return "unclassified";
  }
  return "???";
}

DeviceClassifier::DeviceClassifier(const world::OuiDatabase& ouis, IotDetector iot,
                                   SwitchDetector switches)
    : ouis_(&ouis), iot_(std::move(iot)), switches_(std::move(switches)) {}

DeviceClassifier DeviceClassifier::Default(const world::ServiceCatalog& catalog) {
  return DeviceClassifier(world::OuiDatabase::Default(), IotDetector(catalog),
                          SwitchDetector(catalog));
}

Classification DeviceClassifier::Classify(const DeviceObservations& obs) const {
  // 1. Traffic-dominance Switch rule (§5.3.2) — strongest evidence.
  if (switches_.IsSwitch(obs)) {
    return {DeviceClass::kGameConsole, "nintendo-traffic"};
  }

  // 2. User-Agent majority vote. UA strings are direct self-identification;
  //    a console marker anywhere wins outright.
  std::array<int, 5> votes{};
  for (const std::string& ua : obs.user_agents) {
    const UaClass c = ClassifyUserAgent(ua);
    if (c == UaClass::kGameConsole) return {DeviceClass::kGameConsole, "ua"};
    ++votes[static_cast<std::size_t>(c)];
  }
  const int desktop = votes[static_cast<std::size_t>(UaClass::kDesktop)];
  const int mobile = votes[static_cast<std::size_t>(UaClass::kMobile)];
  const int tv = votes[static_cast<std::size_t>(UaClass::kSmartTv)];
  if (desktop + mobile + tv > 0) {
    if (desktop >= mobile && desktop >= tv) return {DeviceClass::kLaptopDesktop, "ua"};
    if (mobile >= tv) return {DeviceClass::kMobile, "ua"};
    return {DeviceClass::kIot, "ua"};
  }

  // 3. OUI vendor hint (useless for randomized MACs).
  if (!obs.locally_administered) {
    const auto vendor = ouis_->Lookup(
        net::MacAddress::FromOui(obs.oui, 0));
    if (vendor) {
      switch (vendor->hint) {
        case world::VendorHint::kComputer:
          return {DeviceClass::kLaptopDesktop, "oui"};
        case world::VendorHint::kPhone:
          return {DeviceClass::kMobile, "oui"};
        case world::VendorHint::kIot:
          return {DeviceClass::kIot, "oui"};
        case world::VendorHint::kNintendo:
        case world::VendorHint::kConsoleOther:
          return {DeviceClass::kGameConsole, "oui"};
        case world::VendorHint::kComputerOrPhone:
        case world::VendorHint::kGeneric:
          break;  // ambiguous: fall through to behavioural heuristics
      }
    }
  }

  // 4. Saidi-style IoT backend signatures (threshold 0.5).
  if (iot_.Detect(obs)) {
    return {DeviceClass::kIot, "iot-signature"};
  }

  // 5. Conservative default.
  return {DeviceClass::kUnknown, "none"};
}

}  // namespace lockdown::classify
