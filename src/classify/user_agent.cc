#include "classify/user_agent.h"

namespace lockdown::classify {

namespace {
bool Contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}
}  // namespace

const char* ToString(UaClass c) noexcept {
  switch (c) {
    case UaClass::kDesktop: return "desktop";
    case UaClass::kMobile: return "mobile";
    case UaClass::kSmartTv: return "smart-tv";
    case UaClass::kGameConsole: return "game-console";
    case UaClass::kUnknown: return "unknown";
  }
  return "???";
}

UaClass ClassifyUserAgent(std::string_view ua) noexcept {
  // Consoles first: their strings embed desktop platform tokens.
  if (Contains(ua, "Nintendo Switch") || Contains(ua, "PlayStation") ||
      Contains(ua, "Xbox")) {
    return UaClass::kGameConsole;
  }
  if (Contains(ua, "SMART-TV") || Contains(ua, "SmartTV") ||
      Contains(ua, "Roku/") || Contains(ua, "Web0S") || Contains(ua, "Tizen") ||
      Contains(ua, "BRAVIA") || Contains(ua, "AppleTV")) {
    return UaClass::kSmartTv;
  }
  if (Contains(ua, "iPhone") || Contains(ua, "iPad") ||
      (Contains(ua, "Android") &&
       (Contains(ua, "Mobile") || Contains(ua, "musically") ||
        Contains(ua, "Cronet")))) {
    return UaClass::kMobile;
  }
  if (Contains(ua, "Windows NT") || Contains(ua, "Macintosh") ||
      Contains(ua, "X11;") || Contains(ua, "CrOS")) {
    return UaClass::kDesktop;
  }
  // Android without a Mobile token is typically a tablet — still mobile for
  // the paper's taxonomy.
  if (Contains(ua, "Android")) return UaClass::kMobile;
  return UaClass::kUnknown;
}

}  // namespace lockdown::classify
