// The combined device classifier (paper §3): "we classify individual
// on-campus MAC devices as being desktop, mobile or IoT devices using
// multiple heuristics, including analysis of User-Agent strings and
// organizationally unique identifiers (OUIs)... For IoT devices specifically,
// we employ the methods devised by Saidi et al. with a threshold of 0.5."
//
// The heuristics are deliberately conservative: a device with no usable
// evidence is left unclassified, which the paper found to be the dominant
// error mode (14 of 16 errors in their 100-device review were conservative
// "unknown" labels).
#pragma once

#include <cstdint>
#include <string_view>

#include "classify/iot.h"
#include "classify/observations.h"
#include "classify/switch_detect.h"
#include "classify/user_agent.h"
#include "world/oui_db.h"

namespace lockdown::classify {

/// Output classes, matching Figure 1's legend (consoles are reported inside
/// IoT there; we keep them separate and group at reporting time).
enum class DeviceClass : std::uint8_t {
  kMobile,
  kLaptopDesktop,
  kIot,
  kGameConsole,
  kUnknown,
};

[[nodiscard]] const char* ToString(DeviceClass c) noexcept;

struct Classification {
  DeviceClass device_class = DeviceClass::kUnknown;
  std::string_view evidence;  ///< which heuristic decided ("ua", "oui", ...)
};

class DeviceClassifier {
 public:
  DeviceClassifier(const world::OuiDatabase& ouis, IotDetector iot,
                   SwitchDetector switches);

  /// Convenience: all heuristics built from the default databases/catalog.
  [[nodiscard]] static DeviceClassifier Default(const world::ServiceCatalog& catalog);

  [[nodiscard]] Classification Classify(const DeviceObservations& obs) const;

 private:
  const world::OuiDatabase* ouis_;
  IotDetector iot_;
  SwitchDetector switches_;
};

}  // namespace lockdown::classify
