// User-Agent string parsing for device classification (paper §3).
#pragma once

#include <cstdint>
#include <string_view>

namespace lockdown::classify {

/// Device class implied by a single UA string.
enum class UaClass : std::uint8_t {
  kDesktop,
  kMobile,
  kSmartTv,
  kGameConsole,
  kUnknown,
};

[[nodiscard]] const char* ToString(UaClass c) noexcept;

/// Parses one User-Agent string. Console markers take precedence over the
/// platform tokens they embed (the Xbox UA contains "Windows NT").
[[nodiscard]] UaClass ClassifyUserAgent(std::string_view ua) noexcept;

}  // namespace lockdown::classify
