// IoT detection in the style of Saidi et al. (IMC '20), which the paper
// applies "with a threshold of 0.5" (§3).
//
// Each IoT platform has a signature: the set of backend domains its devices
// contact. A device matches a platform when it has contacted at least
// `threshold` of the platform's signature domains — IoT devices talk to
// (nearly) the whole backend set, while a browser that merely visited the
// vendor's homepage does not.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "classify/observations.h"
#include "world/catalog.h"

namespace lockdown::classify {

struct IotMatch {
  std::string_view platform;
  double score = 0.0;  ///< fraction of the platform's signature contacted
};

class IotDetector {
 public:
  struct Signature {
    std::string platform;
    std::vector<std::string> domains;
  };

  /// Builds one signature per IoT-backend service in the catalog.
  explicit IotDetector(const world::ServiceCatalog& catalog, double threshold = 0.5);

  /// Custom signatures (tests).
  IotDetector(std::vector<Signature> signatures, double threshold);

  /// Best-scoring platform at or above the threshold, if any.
  [[nodiscard]] std::optional<IotMatch> Detect(const DeviceObservations& obs) const;

  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] std::size_t num_signatures() const noexcept {
    return signatures_.size();
  }

 private:
  std::vector<Signature> signatures_;
  double threshold_;
};

}  // namespace lockdown::classify
