#include "classify/switch_detect.h"

#include "util/strings.h"

namespace lockdown::classify {

SwitchDetector::SwitchDetector(const world::ServiceCatalog& catalog,
                               double traffic_threshold)
    : threshold_(traffic_threshold) {
  for (const world::Service& svc : catalog.services()) {
    if (svc.name == "nintendo-gameplay" || svc.name == "nintendo-services") {
      domains_.insert(domains_.end(), svc.hosts.begin(), svc.hosts.end());
    }
  }
}

SwitchDetector::SwitchDetector(std::vector<std::string> nintendo_domains,
                               double traffic_threshold)
    : domains_(std::move(nintendo_domains)), threshold_(traffic_threshold) {}

double SwitchDetector::NintendoShare(const DeviceObservations& obs) const {
  std::uint64_t nintendo = 0;
  std::uint64_t total = 0;
  for (const auto& [domain, bytes] : obs.bytes_by_domain) {
    total += bytes;
    for (const std::string& sig : domains_) {
      if (util::DomainMatches(domain, sig)) {
        nintendo += bytes;
        break;
      }
    }
  }
  if (total == 0) return 0.0;
  return static_cast<double>(nintendo) / static_cast<double>(total);
}

bool SwitchDetector::IsSwitch(const DeviceObservations& obs) const {
  return NintendoShare(obs) >= threshold_;
}

}  // namespace lockdown::classify
