// Per-device traffic observations — everything the classifier is allowed to
// see. The pipeline accumulates these while ingesting flows; no simulator
// ground truth crosses this boundary.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lockdown::classify {

struct DeviceObservations {
  /// OUI bits of the device MAC, extracted before anonymization (as the
  /// paper's pipeline does, §3). Meaningless if locally_administered.
  std::uint32_t oui = 0;
  bool locally_administered = false;
  /// Distinct cleartext User-Agent strings seen from the device.
  std::vector<std::string> user_agents;
  /// Bytes exchanged per remote domain (DNS-mapped). Raw-IP traffic is
  /// accounted under total_bytes only.
  std::unordered_map<std::string, std::uint64_t> bytes_by_domain;
  std::uint64_t total_bytes = 0;
  std::uint64_t flow_count = 0;

  void AddUserAgent(std::string_view ua) {
    for (const std::string& seen : user_agents) {
      if (seen == ua) return;
    }
    user_agents.emplace_back(ua);
  }
};

}  // namespace lockdown::classify
