// Nintendo Switch detection: "we classify devices in our dataset as Switches
// if at least 50% of their traffic is to the identified Nintendo servers"
// (paper §5.3.2).
#pragma once

#include <string>
#include <vector>

#include "classify/observations.h"
#include "world/catalog.h"

namespace lockdown::classify {

class SwitchDetector {
 public:
  /// Builds the Nintendo domain list from the catalog (the stand-in for the
  /// 90DNS / SwitchBlocker lists the paper cross-checked against).
  explicit SwitchDetector(const world::ServiceCatalog& catalog,
                          double traffic_threshold = 0.5);

  /// Custom domain list (tests).
  SwitchDetector(std::vector<std::string> nintendo_domains, double traffic_threshold);

  /// True if at least `threshold` of the device's bytes went to Nintendo
  /// servers. Devices with no attributed traffic never match.
  [[nodiscard]] bool IsSwitch(const DeviceObservations& obs) const;

  /// Fraction of the device's domain-attributed bytes on Nintendo domains.
  [[nodiscard]] double NintendoShare(const DeviceObservations& obs) const;

 private:
  std::vector<std::string> domains_;
  double threshold_;
};

}  // namespace lockdown::classify
