// Civil-time handling for the measurement study.
//
// The study period (2020-02-01 .. 2020-05-31) is short enough that we model
// all times in a single campus-local timeline with no DST or leap-second
// handling: a Timestamp is a count of seconds since the Unix epoch in campus
// local time. All figures in the paper are plotted in campus local time, so
// this is the natural coordinate system for the reproduction.
#pragma once

#include <cstdint>
#include <string>

namespace lockdown::util {

/// Seconds since the Unix epoch, campus-local timeline.
using Timestamp = std::int64_t;

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;

/// Day of week. Numbering matches the civil-calendar convention used by the
/// days-from-civil algorithm (Sunday = 0).
enum class Weekday : int {
  kSunday = 0,
  kMonday = 1,
  kTuesday = 2,
  kWednesday = 3,
  kThursday = 4,
  kFriday = 5,
  kSaturday = 6,
};

/// Short English name ("Sun", "Mon", ...).
[[nodiscard]] const char* ToString(Weekday wd) noexcept;

/// A calendar date (proleptic Gregorian).
struct CivilDate {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend constexpr auto operator<=>(const CivilDate&, const CivilDate&) = default;
};

/// A calendar date plus time-of-day.
struct CivilDateTime {
  CivilDate date;
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59

  friend constexpr auto operator<=>(const CivilDateTime&, const CivilDateTime&) = default;
};

/// Days since the Unix epoch for a civil date (Howard Hinnant's algorithm).
[[nodiscard]] std::int64_t DaysFromCivil(CivilDate d) noexcept;

/// Inverse of DaysFromCivil.
[[nodiscard]] CivilDate CivilFromDays(std::int64_t days) noexcept;

/// Timestamp at midnight of the given date.
[[nodiscard]] Timestamp TimestampOf(CivilDate d) noexcept;

/// Timestamp of the given date-time.
[[nodiscard]] Timestamp TimestampOf(CivilDateTime dt) noexcept;

/// Civil date-time corresponding to a timestamp.
[[nodiscard]] CivilDateTime CivilOf(Timestamp ts) noexcept;

/// Date (midnight truncation) of a timestamp.
[[nodiscard]] CivilDate DateOf(Timestamp ts) noexcept;

/// Day index since epoch of a timestamp (floor division).
[[nodiscard]] std::int64_t DayIndexOf(Timestamp ts) noexcept;

/// Weekday of a date.
[[nodiscard]] Weekday WeekdayOf(CivilDate d) noexcept;

/// Weekday of a timestamp.
[[nodiscard]] Weekday WeekdayOf(Timestamp ts) noexcept;

/// True for Saturday or Sunday.
[[nodiscard]] bool IsWeekend(Weekday wd) noexcept;

/// Hour of day (0..23) of a timestamp.
[[nodiscard]] int HourOf(Timestamp ts) noexcept;

/// "YYYY-MM-DD".
[[nodiscard]] std::string FormatDate(CivilDate d);

/// "YYYY-MM-DD HH:MM:SS".
[[nodiscard]] std::string FormatDateTime(Timestamp ts);

/// Parses "YYYY-MM-DD". Throws std::invalid_argument on malformed input.
[[nodiscard]] CivilDate ParseDate(const std::string& s);

/// The fixed calendar of the measurement study, with the event dates the
/// paper marks as vertical lines in its figures.
struct StudyCalendar {
  static constexpr CivilDate kStart = {2020, 2, 1};
  static constexpr CivilDate kEnd = {2020, 6, 1};  ///< exclusive
  static constexpr CivilDate kStateOfEmergency = {2020, 3, 4};
  static constexpr CivilDate kWhoPandemic = {2020, 3, 11};
  static constexpr CivilDate kStayAtHome = {2020, 3, 19};
  static constexpr CivilDate kBreakStart = {2020, 3, 22};
  static constexpr CivilDate kBreakEnd = {2020, 3, 30};  ///< classes resume online

  /// The four weeks plotted in Figure 3, each identified by its Thursday.
  static constexpr CivilDate kFig3Weeks[4] = {
      {2020, 2, 20}, {2020, 3, 19}, {2020, 4, 9}, {2020, 5, 14}};

  [[nodiscard]] static Timestamp StartTs() noexcept { return TimestampOf(kStart); }
  [[nodiscard]] static Timestamp EndTs() noexcept { return TimestampOf(kEnd); }
  /// Number of days in the study period (Feb..May 2020 = 121).
  [[nodiscard]] static int NumDays() noexcept {
    return static_cast<int>(DaysFromCivil(kEnd) - DaysFromCivil(kStart));
  }
  /// Day index (0-based from study start) of a date.
  [[nodiscard]] static int DayIndex(CivilDate d) noexcept {
    return static_cast<int>(DaysFromCivil(d) - DaysFromCivil(kStart));
  }
  /// Day index of a timestamp, 0-based from study start.
  [[nodiscard]] static int DayIndex(Timestamp ts) noexcept {
    return static_cast<int>(DayIndexOf(ts) - DaysFromCivil(kStart));
  }
  /// Date of a 0-based study day index.
  [[nodiscard]] static CivilDate DateAt(int day_index) noexcept {
    return CivilFromDays(DaysFromCivil(kStart) + day_index);
  }
};

}  // namespace lockdown::util
