// Process-memory observability.
//
// The streaming study engine (src/stream) claims a hard analysis-state
// memory budget; these helpers make that claim observable instead of
// asserted: peak/current RSS straight from the kernel, plus byte-size
// parsing/formatting for the `--memory-budget` CLI surface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lockdown::util {

/// Peak resident set size of this process in bytes (ru_maxrss). 0 when the
/// platform cannot report it. Monotone over the process lifetime: it never
/// decreases, so "peak RSS under budget" is a statement about the whole run.
[[nodiscard]] std::size_t PeakRssBytes() noexcept;

/// Current resident set size in bytes, from /proc/self/statm. 0 when
/// unavailable (non-Linux or unreadable procfs).
[[nodiscard]] std::size_t CurrentRssBytes() noexcept;

/// Samples PeakRssBytes/CurrentRssBytes into the obs gauges
/// "process/peak_rss_bytes" and "process/current_rss_bytes". No-op unless
/// metrics are enabled. Call at natural milestones (end of a run, after a
/// pass) — gauges are last-write-wins.
void PublishRssGauges() noexcept;

/// "1023 B", "4.0 KiB", "31.5 MiB", "2.0 GiB" — binary units, one decimal
/// for scaled values.
[[nodiscard]] std::string FormatByteSize(std::size_t bytes);

/// Parses a byte size with an optional binary-unit suffix: "65536", "64K",
/// "64KiB", "32M", "2G" (case-insensitive; "B" alone is also accepted).
/// Returns nullopt on malformed input, a negative value, or overflow.
[[nodiscard]] std::optional<std::size_t> ParseByteSize(std::string_view s) noexcept;

}  // namespace lockdown::util
