// Hashing primitives.
//
// FNV-1a for cheap unkeyed hashing (domain interning, bucketing) and
// SipHash-2-4 for the privacy layer's keyed pseudonymization of MAC/IP
// addresses: with the 128-bit key discarded at the end of a run, pseudonyms
// cannot be reversed, matching the paper's anonymize-then-discard policy.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace lockdown::util {

/// 64-bit FNV-1a over arbitrary bytes.
[[nodiscard]] std::uint64_t Fnv1a64(std::span<const std::byte> data) noexcept;

/// 64-bit FNV-1a over a string.
[[nodiscard]] std::uint64_t Fnv1a64(std::string_view s) noexcept;

/// 128-bit key for SipHash.
struct SipHashKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;
};

/// SipHash-2-4 (Aumasson & Bernstein) over arbitrary bytes.
[[nodiscard]] std::uint64_t SipHash24(SipHashKey key,
                                      std::span<const std::byte> data) noexcept;

/// SipHash-2-4 over a single 64-bit value (common case: MAC / IPv4 inputs).
[[nodiscard]] std::uint64_t SipHash24(SipHashKey key, std::uint64_t value) noexcept;

}  // namespace lockdown::util
