#include "util/hash.h"

#include <bit>
#include <cstring>

namespace lockdown::util {

std::uint64_t Fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t Fnv1a64(std::string_view s) noexcept {
  return Fnv1a64(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

namespace {

inline void SipRound(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) noexcept {
  v0 += v1;
  v1 = std::rotl(v1, 13);
  v1 ^= v0;
  v0 = std::rotl(v0, 32);
  v2 += v3;
  v3 = std::rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = std::rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = std::rotl(v1, 17);
  v1 ^= v2;
  v2 = std::rotl(v2, 32);
}

inline std::uint64_t ReadLe64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  return v;
}

}  // namespace

std::uint64_t SipHash24(SipHashKey key, std::span<const std::byte> data) noexcept {
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ key.k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ key.k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ key.k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ key.k1;

  const std::size_t n = data.size();
  const std::byte* p = data.data();
  const std::size_t end = n - (n % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    const std::uint64_t m = ReadLe64(p + i);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t b = static_cast<std::uint64_t>(n) << 56;
  for (std::size_t i = end; i < n; ++i) {
    b |= static_cast<std::uint64_t>(p[i]) << (8 * (i - end));
  }
  v3 ^= b;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xff;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t SipHash24(SipHashKey key, std::uint64_t value) noexcept {
  std::array<std::byte, 8> buf;
  if constexpr (std::endian::native == std::endian::big) {
    value = __builtin_bswap64(value);
  }
  std::memcpy(buf.data(), &value, sizeof(value));
  return SipHash24(key, std::span<const std::byte>(buf));
}

}  // namespace lockdown::util
