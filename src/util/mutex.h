// Annotated lock primitives (DESIGN.md §11).
//
// Thin wrappers over std::mutex / std::condition_variable carrying the clang
// Thread Safety Analysis capability attributes, so `clang++ -Wthread-safety
// -Werror` (the `lint` tier) statically proves every GUARDED_BY field is
// only touched with its lock held. libstdc++'s std::mutex has no such
// attributes, which is why project code must use these wrappers instead of
// the raw primitives — lockdown_lint rule LD007 enforces exactly that
// outside this header.
//
// The wrappers add nothing at runtime: every member is a single inlined
// forward to the std primitive, so TSan/ASan behavior and performance are
// unchanged (BENCH_baseline.json was re-measured after the conversion).
#pragma once

#include <condition_variable>
#include <mutex>  // lockdown-lint: allow(LD007) the one annotated wrapping site

#include "util/thread_annotations.h"

namespace lockdown::util {

/// Exclusive lock. A `Mutex` member is a capability; name it in GUARDED_BY
/// on every field it protects.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { impl_.lock(); }
  void Unlock() RELEASE() { impl_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex impl_;
};

/// RAII guard, the project's spelling of std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to a Mutex at each wait site (the abseil
/// CondVar shape). Wait atomically releases `mu`, sleeps, and re-acquires
/// before returning, so from the analysis' point of view the capability is
/// held across the call — hence REQUIRES, not ACQUIRE/RELEASE.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    // std::condition_variable wants a unique_lock; adopt the already-held
    // mutex for the duration of the wait and release the adapter after so
    // ownership stays with the caller's MutexLock.
    std::unique_lock<std::mutex> adapter(mu.impl_, std::adopt_lock);
    cv_.wait(adapter);
    adapter.release();
  }

  /// Waits until pred() holds; pred is evaluated with `mu` held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lockdown::util
