#include "util/thread_pool.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <exception>

namespace lockdown::util {

int ResolveThreadCount(int requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("LOCKDOWN_THREADS");
      env != nullptr && *env != '\0') {
    int value = 0;
    const char* end = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, end, value);
    if (ec == std::errc() && ptr == end && value >= 0) {
      return value <= 1 ? 1 : value;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct ThreadPool::Job {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 0;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> finished{0};
  int attached = 0;  // workers currently holding this job; guarded by mutex_
  std::mutex error_mutex;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int threads) {
  const int workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Job& job) {
  for (;;) {
    const std::size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) return;
    const std::size_t begin = chunk * job.grain;
    const std::size_t end = std::min(begin + job.grain, job.n);
    try {
      (*job.fn)(chunk, begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    job.finished.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      job = job_;
      ++job->attached;
    }
    RunChunks(*job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --job->attached;
    }
    // The caller sleeps until every chunk is finished AND every attached
    // worker has let go of the job (it lives on the caller's stack).
    done_.notify_one();
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) const {
  if (n == 0) return;
  if (grain == 0 || grain > n) grain = n;
  Job job;
  job.fn = &fn;
  job.n = n;
  job.grain = grain;
  job.num_chunks = NumChunks(n, grain);

  if (workers_.empty() || job.num_chunks == 1) {
    // Serial fallback: the identical chunks, in chunk order.
    for (std::size_t c = 0; c < job.num_chunks; ++c) {
      const std::size_t begin = c * grain;
      (*job.fn)(c, begin, std::min(begin + grain, n));
    }
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  wake_.notify_all();
  RunChunks(job);  // the caller is a lane too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return job.attached == 0 &&
             job.finished.load(std::memory_order_acquire) == job.num_chunks;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace lockdown::util
