#include "util/thread_pool.h"

#include <array>
#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "obs/obs.h"

namespace lockdown::util {
namespace {

// Per-lane accounting is capped; lanes past the cap still run chunks, they
// just skip utilization bookkeeping.
constexpr int kMaxObsLanes = 64;

std::int64_t ObsNowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Folds a finished job's lane timings into the registry: per-lane busy time,
// total chunk count, and the busy-time spread between the most and least
// loaded lanes (the "one slow chunk serializes the tail" signal).
void RecordJobStats(const std::array<std::uint64_t, kMaxObsLanes>& busy_ns,
                    const std::array<std::uint64_t, kMaxObsLanes>& lane_chunks,
                    std::size_t num_chunks) {
  static obs::Counter& jobs =
      obs::GetCounter("thread_pool/parallel_for", "calls");
  static obs::Counter& chunks = obs::GetCounter("thread_pool/chunks", "chunks");
  static obs::Histogram& lane_busy = obs::GetHistogram(
      "thread_pool/lane_busy_us", obs::Buckets::kDurationUs, "us");
  static obs::Histogram& imbalance = obs::GetHistogram(
      "thread_pool/imbalance_pct", obs::Buckets::kPercent, "%");
  jobs.Increment();
  chunks.Add(num_chunks);
  std::uint64_t max_busy = 0;
  std::uint64_t min_busy = UINT64_MAX;
  bool any = false;
  for (int lane = 0; lane < kMaxObsLanes; ++lane) {
    if (lane_chunks[lane] == 0) continue;
    any = true;
    lane_busy.Observe(busy_ns[lane] / 1000);
    if (busy_ns[lane] > max_busy) max_busy = busy_ns[lane];
    if (busy_ns[lane] < min_busy) min_busy = busy_ns[lane];
  }
  if (any && max_busy > 0) {
    imbalance.Observe(100 * (max_busy - min_busy) / max_busy);
  }
}

}  // namespace

int ResolveThreadCount(int requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("LOCKDOWN_THREADS");
      env != nullptr && *env != '\0') {
    int value = 0;
    const char* end = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, end, value);
    if (ec == std::errc() && ptr == end && value >= 0) {
      return value <= 1 ? 1 : value;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct ThreadPool::Job {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 0;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> finished{0};
  int attached = 0;  // workers currently holding this job; guarded by the
                     // owning pool's mutex_ (not expressible in GUARDED_BY:
                     // Job is not a member of ThreadPool)
  Mutex error_mutex;
  std::exception_ptr error GUARDED_BY(error_mutex);
  // Lane accounting, populated only when obs_on. Each lane writes its own
  // slot; the caller reads after the done_ handshake, so no atomics needed.
  bool obs_on = false;
  std::array<std::uint64_t, kMaxObsLanes> busy_ns{};
  std::array<std::uint64_t, kMaxObsLanes> lane_chunks{};
};

ThreadPool::ThreadPool(int threads) {
  const int workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    // Lane 0 is the caller; workers take 1..N.
    workers_.emplace_back([this, lane = i + 1] { WorkerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Job& job, int lane) {
  static obs::Histogram& chunk_us = obs::GetHistogram(
      "thread_pool/chunk_us", obs::Buckets::kDurationUs, "us");
  for (;;) {
    const std::size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) return;
    const std::size_t begin = chunk * job.grain;
    const std::size_t end = std::min(begin + job.grain, job.n);
    const std::int64_t t0 = job.obs_on ? ObsNowNs() : 0;
    try {
      (*job.fn)(chunk, begin, end);
    } catch (...) {
      const MutexLock lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.obs_on) {
      const auto elapsed = static_cast<std::uint64_t>(ObsNowNs() - t0);
      chunk_us.Observe(elapsed / 1000);
      if (lane < kMaxObsLanes) {
        job.busy_ns[static_cast<std::size_t>(lane)] += elapsed;
        job.lane_chunks[static_cast<std::size_t>(lane)] += 1;
      }
    }
    job.finished.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::WorkerLoop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      const MutexLock lock(mutex_);
      wake_.Wait(mutex_,
                 [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      job = job_;
      ++job->attached;
    }
    RunChunks(*job, lane);
    {
      const MutexLock lock(mutex_);
      --job->attached;
    }
    // The caller sleeps until every chunk is finished AND every attached
    // worker has let go of the job (it lives on the caller's stack).
    done_.NotifyOne();
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) const {
  if (n == 0) return;
  if (grain == 0 || grain > n) grain = n;
  Job job;
  job.fn = &fn;
  job.n = n;
  job.grain = grain;
  job.num_chunks = NumChunks(n, grain);
  job.obs_on = obs::MetricsEnabled();

  if (workers_.empty() || job.num_chunks == 1) {
    // Serial fallback: the identical chunks, in chunk order. Exceptions
    // propagate immediately (later chunks do not run), unlike the parallel
    // path — timing is inlined here so that contract stays untouched.
    static obs::Histogram& chunk_us = obs::GetHistogram(
        "thread_pool/chunk_us", obs::Buckets::kDurationUs, "us");
    for (std::size_t c = 0; c < job.num_chunks; ++c) {
      const std::size_t begin = c * grain;
      const std::int64_t t0 = job.obs_on ? ObsNowNs() : 0;
      (*job.fn)(c, begin, std::min(begin + grain, n));
      if (job.obs_on) {
        const auto elapsed = static_cast<std::uint64_t>(ObsNowNs() - t0);
        chunk_us.Observe(elapsed / 1000);
        job.busy_ns[0] += elapsed;
        job.lane_chunks[0] += 1;
      }
    }
    if (job.obs_on) {
      RecordJobStats(job.busy_ns, job.lane_chunks, job.num_chunks);
    }
    return;
  }

  {
    const MutexLock lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  wake_.NotifyAll();
  RunChunks(job, /*lane=*/0);  // the caller is a lane too
  {
    const MutexLock lock(mutex_);
    done_.Wait(mutex_, [&] {
      return job.attached == 0 &&
             job.finished.load(std::memory_order_acquire) == job.num_chunks;
    });
    job_ = nullptr;
  }
  if (job.obs_on) {
    RecordJobStats(job.busy_ns, job.lane_chunks, job.num_chunks);
  }
  // All workers detached: the caller owns job.error again, no lock needed —
  // but take it anyway so the annotated contract has no analysis hole.
  std::exception_ptr error;
  {
    const MutexLock lock(job.error_mutex);
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace lockdown::util
