#include "util/memstats.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include <cctype>
#include <charconv>
#include <cstdio>
#include <limits>

#include "obs/obs.h"

namespace lockdown::util {

std::size_t PeakRssBytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024U;
#endif
#else
  return 0;  // unsupported platform: report "unknown", never garbage
#endif
}

std::size_t CurrentRssBytes() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "re");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long rss_pages = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(rss_pages) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
#else
  return 0;  // live RSS needs procfs; peak via getrusage may still work
#endif
}

void PublishRssGauges() noexcept {
  if (!obs::MetricsEnabled()) return;
  static obs::Gauge& peak = obs::GetGauge("process/peak_rss_bytes", "bytes");
  static obs::Gauge& current =
      obs::GetGauge("process/current_rss_bytes", "bytes");
  peak.Set(static_cast<double>(PeakRssBytes()));
  current.Set(static_cast<double>(CurrentRssBytes()));
}

std::string FormatByteSize(std::size_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::optional<std::size_t> ParseByteSize(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr == begin) return std::nullopt;
  std::string_view suffix(ptr, static_cast<std::size_t>(end - ptr));
  std::uint64_t multiplier = 1;
  if (!suffix.empty()) {
    const char unit = static_cast<char>(
        std::tolower(static_cast<unsigned char>(suffix.front())));
    std::string_view rest = suffix.substr(1);
    switch (unit) {
      case 'b': multiplier = 1; break;
      case 'k': multiplier = 1ULL << 10; break;
      case 'm': multiplier = 1ULL << 20; break;
      case 'g': multiplier = 1ULL << 30; break;
      case 't': multiplier = 1ULL << 40; break;
      default: return std::nullopt;
    }
    // Accept "64K", "64KB", "64KiB" (and lower-case variants); nothing else.
    if (unit != 'b' && !rest.empty()) {
      if (rest == "b" || rest == "B") {
        rest = {};
      } else if (rest.size() == 2 &&
                 (rest[0] == 'i' || rest[0] == 'I') &&
                 (rest[1] == 'b' || rest[1] == 'B')) {
        rest = {};
      }
    }
    if (!rest.empty()) return std::nullopt;
  }
  if (value != 0 &&
      multiplier > std::numeric_limits<std::uint64_t>::max() / value) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(value * multiplier);
}

}  // namespace lockdown::util
