#include "util/strings.h"

#include <string.h>  // strerror_r (POSIX; <cstring> need not declare it)

#include <cctype>
#include <cstdio>

namespace lockdown::util {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool DomainMatches(std::string_view host, std::string_view domain) noexcept {
  if (host.size() == domain.size()) return host == domain;
  if (host.size() > domain.size() && EndsWith(host, domain)) {
    return host[host.size() - domain.size() - 1] == '.';
  }
  return false;
}

std::string_view LastLabels(std::string_view host, int labels) noexcept {
  if (labels <= 0) return {};
  int seen = 0;
  for (std::size_t i = host.size(); i-- > 0;) {
    if (host[i] == '.') {
      if (++seen == labels) return host.substr(i + 1);
    }
  }
  return host;
}

namespace {

// strerror_r differs by libc: XSI returns int (0 = success, message in buf),
// GNU returns char* (may point into buf or at a static immutable string).
// Overloading on the actual return type picks the right reading at compile
// time without feature-test macro guesswork.
[[maybe_unused]] const char* ResolveStrerror(int rc, const char* buf) {
  return rc == 0 ? buf : "Unknown error";
}
[[maybe_unused]] const char* ResolveStrerror(const char* ret, const char*) {
  return ret;
}

}  // namespace

std::string ErrnoString(int err) {
  char buf[256] = {};
  return ResolveStrerror(strerror_r(err, buf, sizeof buf), buf);
}

std::string FormatBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1000.0 && unit < 5) {
    bytes /= 1000.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace lockdown::util
