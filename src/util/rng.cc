#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace lockdown::util {

namespace {
constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1u) | 1u) {
  Next();
  state_ += seed;
  Next();
}

std::uint32_t Pcg32::Next() noexcept {
  const std::uint64_t old = state_;
  state_ = old * kMultiplier + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t Pcg32::NextBounded(std::uint32_t bound) noexcept {
  assert(bound > 0);
  // Lemire-style threshold rejection.
  const std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint32_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::NextDouble() noexcept {
  return static_cast<double>(Next()) * (1.0 / 4294967296.0);
}

double Pcg32::Uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Pcg32::UniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>((static_cast<std::uint64_t>(Next()) << 32) | Next());
  }
  if (range <= 0xFFFFFFFFULL) {
    return lo + static_cast<std::int64_t>(NextBounded(static_cast<std::uint32_t>(range)));
  }
  // Rare large-range case: rejection over 64 bits.
  const std::uint64_t limit = range * (UINT64_MAX / range);
  for (;;) {
    const std::uint64_t r = (static_cast<std::uint64_t>(Next()) << 32) | Next();
    if (r < limit) return lo + static_cast<std::int64_t>(r % range);
  }
}

bool Pcg32::Bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Pcg32::Normal() noexcept {
  // Polar Box-Muller; discards the second deviate to keep the class stateless
  // beyond the PCG state (simplifies Fork semantics).
  for (;;) {
    const double u = Uniform(-1.0, 1.0);
    const double v = Uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Pcg32::Normal(double mean, double stddev) noexcept {
  return mean + stddev * Normal();
}

double Pcg32::LogNormal(double mu, double sigma) noexcept {
  return std::exp(Normal(mu, sigma));
}

double Pcg32::Exponential(double mean) noexcept {
  assert(mean > 0.0);
  double u = NextDouble();
  if (u <= 0.0) u = 1e-12;
  return -mean * std::log(u);
}

int Pcg32::Poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double l = std::exp(-lambda);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  const double x = Normal(lambda, std::sqrt(lambda));
  return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
}

Pcg32 Pcg32::Fork(std::uint64_t stream) const noexcept {
  // Mix current state with the requested stream id so forks from different
  // points of the parent sequence differ even for equal stream ids.
  return Pcg32(state_ ^ 0x9E3779B97F4A7C15ULL, stream);
}

std::size_t SampleIndex(Pcg32& rng, std::span<const double> weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double r = rng.NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

std::size_t ZipfDistribution::Sample(Pcg32& rng) const noexcept {
  const double u = rng.NextDouble();
  // First index whose CDF value exceeds u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace lockdown::util
