// Small string utilities used across the pipeline; in particular the DNS
// suffix matching used by every application signature.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lockdown::util {

/// Splits on a single separator character. Empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> Split(std::string_view s, char sep);

/// Joins pieces with the separator.
[[nodiscard]] std::string Join(const std::vector<std::string>& pieces,
                               std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view Trim(std::string_view s) noexcept;

/// ASCII lowercase copy.
[[nodiscard]] std::string ToLower(std::string_view s);

[[nodiscard]] bool StartsWith(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool EndsWith(std::string_view s, std::string_view suffix) noexcept;

/// True if `host` equals `domain` or is a subdomain of it
/// ("cdn.zoom.us" matches "zoom.us"; "notzoom.us" does not).
[[nodiscard]] bool DomainMatches(std::string_view host, std::string_view domain) noexcept;

/// Registrable-ish suffix of a host: the last `labels` DNS labels
/// ("a.b.facebook.com", 2) -> "facebook.com". Returns the whole host if it
/// has fewer labels.
[[nodiscard]] std::string_view LastLabels(std::string_view host, int labels) noexcept;

/// Thread-safe strerror: formats an errno value via strerror_r. std::strerror
/// shares a static buffer, and I/O errors here can surface from ParallelFor
/// worker threads (concurrency-mt-unsafe).
[[nodiscard]] std::string ErrnoString(int err);

/// Human-readable byte count ("1.5 GB").
[[nodiscard]] std::string FormatBytes(double bytes);

/// Fixed-precision double ("12.34").
[[nodiscard]] std::string FormatDouble(double v, int precision);

}  // namespace lockdown::util
