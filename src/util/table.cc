#include "util/table.h"

#include <algorithm>
#include <iomanip>

namespace lockdown::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace lockdown::util
