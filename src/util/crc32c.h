// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every section of the LDS snapshot format (src/store).
// Chosen over plain CRC32 for its better error-detection properties on
// storage-sized payloads; this is the same polynomial iSCSI, ext4 and
// Snappy use, so test vectors are widely published.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace lockdown::util {

/// CRC32C of `data` in one shot.
[[nodiscard]] std::uint32_t Crc32c(std::span<const std::byte> data) noexcept;

/// Incremental interface for streaming writers: feed chunks, then value().
class Crc32cAccumulator {
 public:
  void Update(std::span<const std::byte> data) noexcept;
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace lockdown::util
