// Clang Thread Safety Analysis attribute macros (DESIGN.md §11).
//
// These expand to clang's `capability`-family attributes when the compiler
// supports them and to nothing everywhere else, so the same headers compile
// under GCC (this repo's default toolchain) and get full static lock-checking
// under `clang++ -Wthread-safety -Werror` (the `lint` tier in
// tools/check.sh). The vocabulary follows the clang documentation and the
// abseil mutex annotations:
//
//   CAPABILITY("mutex")   on a lock class: instances are capabilities.
//   SCOPED_CAPABILITY     on an RAII guard class.
//   GUARDED_BY(mu)        on data members: reads/writes require mu held.
//   PT_GUARDED_BY(mu)     on pointer members: the pointee requires mu.
//   REQUIRES(mu)          on functions: caller must hold mu.
//   ACQUIRE(mu)/RELEASE(mu) on functions that take/drop mu themselves.
//   EXCLUDES(mu)          on functions that must NOT be called with mu held.
//   ACQUIRED_BEFORE/AFTER declared lock ordering (deadlock detection).
//   NO_THREAD_SAFETY_ANALYSIS  opt a function out (document why at the site).
//
// Never write `__attribute__((guarded_by(...)))` directly — always go
// through these macros so non-clang builds stay clean.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define LOCKDOWN_TSA_HAS(x) __has_attribute(x)
#else
#define LOCKDOWN_TSA_HAS(x) 0
#endif

#if LOCKDOWN_TSA_HAS(capability)
#define LOCKDOWN_TSA(x) __attribute__((x))
#else
#define LOCKDOWN_TSA(x)  // no-op outside clang
#endif

#define CAPABILITY(x) LOCKDOWN_TSA(capability(x))
#define SCOPED_CAPABILITY LOCKDOWN_TSA(scoped_lockable)
#define GUARDED_BY(x) LOCKDOWN_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) LOCKDOWN_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) LOCKDOWN_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) LOCKDOWN_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) LOCKDOWN_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) LOCKDOWN_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) LOCKDOWN_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) LOCKDOWN_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) LOCKDOWN_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) LOCKDOWN_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) LOCKDOWN_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) LOCKDOWN_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) LOCKDOWN_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) LOCKDOWN_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) LOCKDOWN_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS LOCKDOWN_TSA(no_thread_safety_analysis)
