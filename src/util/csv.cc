#include "util/csv.h"

namespace lockdown::util {

DelimitedWriter::DelimitedWriter(std::ostream& out, char delimiter)
    : out_(out), delimiter_(delimiter) {}

std::string DelimitedWriter::Escape(std::string_view field) const {
  const bool needs_quote =
      field.find(delimiter_) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void DelimitedWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << delimiter_;
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
}

std::vector<std::string> DelimitedReader::ParseLine(std::string_view line) const {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"' && cur.empty()) {
      quoted = true;
    } else if (c == delimiter_) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::vector<std::vector<std::string>> DelimitedReader::ParseAll(
    std::string_view text) const {
  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      if (i > start || (i < text.size())) {
        std::string_view line = text.substr(start, i - start);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        if (!line.empty() || i < text.size()) rows.push_back(ParseLine(line));
      }
      start = i + 1;
    }
  }
  // Trim a trailing empty row produced by a final newline.
  while (!rows.empty() && rows.back().size() == 1 && rows.back()[0].empty()) {
    rows.pop_back();
  }
  return rows;
}

}  // namespace lockdown::util
