// Deterministic fault injection for ingest robustness testing.
//
// Models what four months of continuous collection against a live tap
// actually produces: truncated tails from interrupted rotations, bit flips
// from bad disks/transfer, dropped and duplicated lines from racy log
// shippers, and spliced garbage from interleaved writers. Every fault is
// drawn from a Pcg32 seeded by (seed, kind), so a given (seed, rate, kind)
// triple maps an input to exactly one output on every platform — the
// differential test suite and the check.sh fault tier rely on this.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace lockdown::util {

enum class FaultKind : std::uint8_t {
  kTruncateTail,    ///< cut bytes off the end of the document
  kBitFlip,         ///< flip one random bit in randomly chosen lines
  kDropLine,        ///< remove whole lines
  kDuplicateLine,   ///< repeat whole lines
  kSpliceGarbage,   ///< insert random garbage lines between rows
  kMixed,           ///< all of the above, each at rate/5; guarantees at
                    ///< least one garbage line so the output is never clean
};
inline constexpr int kNumFaultKinds = 6;

[[nodiscard]] const char* ToString(FaultKind kind) noexcept;

struct FaultConfig {
  std::uint64_t seed = 1;
  /// Per-line fault probability for the line-level kinds (including
  /// kBitFlip); fraction of the document for kTruncateTail.
  double rate = 0.01;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config) noexcept : config_(config) {}

  /// Returns a faulted copy of `text`. Pure: same (config, text, kind) in,
  /// same bytes out. rate == 0 returns `text` unchanged for every kind.
  [[nodiscard]] std::string Apply(std::string_view text, FaultKind kind) const;

 private:
  FaultConfig config_;
};

}  // namespace lockdown::util
