#include "util/crc32c.h"

#include <array>

namespace lockdown::util {

namespace {

// Slicing-by-4: four 256-entry tables derived from the reflected Castagnoli
// polynomial. Generated at static-init time; ~4 KiB total.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Tables() noexcept {
    constexpr std::uint32_t kPoly = 0x82F63B78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables kTables;

std::uint32_t Advance(std::uint32_t state, std::span<const std::byte> data) noexcept {
  const auto& t = kTables.t;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 4) {
    state ^= static_cast<std::uint32_t>(p[0]) |
             (static_cast<std::uint32_t>(p[1]) << 8) |
             (static_cast<std::uint32_t>(p[2]) << 16) |
             (static_cast<std::uint32_t>(p[3]) << 24);
    state = t[3][state & 0xFFu] ^ t[2][(state >> 8) & 0xFFu] ^
            t[1][(state >> 16) & 0xFFu] ^ t[0][state >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    state = (state >> 8) ^ t[0][(state ^ static_cast<std::uint32_t>(*p++)) & 0xFFu];
  }
  return state;
}

}  // namespace

std::uint32_t Crc32c(std::span<const std::byte> data) noexcept {
  return Advance(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

void Crc32cAccumulator::Update(std::span<const std::byte> data) noexcept {
  state_ = Advance(state_, data);
}

}  // namespace lockdown::util
