// Deterministic random number generation.
//
// Every stochastic choice in the simulator draws from a Pcg32 seeded from
// StudyConfig::seed, so a given configuration reproduces the exact same
// synthetic campus. We implement PCG ourselves (it is ~10 lines) rather than
// rely on std::mt19937 so the stream is stable across standard libraries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lockdown::util {

/// PCG-XSH-RR 64/32 (O'Neill 2014). Deterministic across platforms.
class Pcg32 {
 public:
  /// Seeds the generator; distinct (seed, stream) pairs give independent
  /// sequences.
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  /// Next 32 uniformly distributed bits.
  std::uint32_t Next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0. Uses unbiased
  /// rejection sampling.
  std::uint32_t NextBounded(std::uint32_t bound) noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) noexcept;

  /// Standard normal deviate (polar Box-Muller, one value per call).
  double Normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) noexcept;

  /// Log-normal deviate: exp(Normal(mu, sigma)). Heavy-tailed, the canonical
  /// model for session durations and per-flow byte volumes.
  double LogNormal(double mu, double sigma) noexcept;

  /// Exponential deviate with the given mean (mean > 0).
  double Exponential(double mean) noexcept;

  /// Poisson deviate. Uses inversion for small lambda, normal approximation
  /// for large lambda.
  int Poisson(double lambda) noexcept;

  /// Derives an independent generator for a named sub-component; used to give
  /// each device its own stable stream regardless of generation order.
  [[nodiscard]] Pcg32 Fork(std::uint64_t stream) const noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Samples an index from a discrete distribution given non-negative weights.
/// Returns weights.size()-1 if rounding exhausts the range. Empty weights are
/// a precondition violation (asserted).
std::size_t SampleIndex(Pcg32& rng, std::span<const double> weights) noexcept;

/// Bounded Zipf sampler over ranks 1..n with exponent s. Precomputes the
/// harmonic normalization once; Sample() is O(log n) via binary search on the
/// CDF. Used for long-tail site popularity.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  /// Returns a 0-based rank in [0, n).
  std::size_t Sample(Pcg32& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace lockdown::util
