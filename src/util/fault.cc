#include "util/fault.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "util/strings.h"

namespace lockdown::util {

namespace {

std::string GarbageLine(Pcg32& rng) {
  // Printable noise with occasional tabs: what an interleaved writer or a
  // corrupted shipper actually leaves behind. Never empty (blank lines are
  // skipped by the readers, not rejected).
  const std::size_t len = 1 + rng.NextBounded(60);
  std::string line;
  line.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    const std::uint32_t roll = rng.NextBounded(16);
    line.push_back(roll == 0 ? '\t'
                             : static_cast<char>(0x21 + rng.NextBounded(0x5E)));
  }
  return line;
}

std::string TruncateTail(std::string_view text, double rate, Pcg32& rng) {
  if (text.empty()) return std::string(text);
  // Cut between 1 byte and rate-fraction of the document, uniformly.
  const auto max_cut = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(rate * static_cast<double>(text.size())));
  const std::uint64_t cut =
      1 + static_cast<std::uint64_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(std::min<std::uint64_t>(
                     max_cut, text.size()) - 1)));
  return std::string(text.substr(0, text.size() - cut));
}

std::string BitFlip(std::string_view text, double rate, Pcg32& rng) {
  // One random bit per hit line, so the rejection rate stays bounded by the
  // fault rate (a per-byte model would corrupt ~every line at 1%).
  std::string out(text);
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= out.size(); ++i) {
    if (i != out.size() && out[i] != '\n') continue;
    if (i > line_start && rng.Bernoulli(rate)) {
      const std::size_t pos =
          line_start + rng.NextBounded(static_cast<std::uint32_t>(i - line_start));
      out[pos] = static_cast<char>(static_cast<unsigned char>(out[pos]) ^
                                   (1u << rng.NextBounded(8)));
    }
    line_start = i + 1;
  }
  return out;
}

enum LineOp { kKeep, kDrop, kDup, kSplice };

std::string PerLine(std::string_view text, double rate, Pcg32& rng, LineOp op) {
  const auto lines = Split(text, '\n');
  const bool ends_with_newline = !text.empty() && text.back() == '\n';
  // Split("a\nb\n") yields {"a","b",""}: the trailing empty piece is an
  // artifact of the final newline, not a line.
  const std::size_t n = lines.size() - (ends_with_newline ? 1 : 0);
  std::string out;
  out.reserve(text.size() + 64);
  for (std::size_t i = 0; i < n; ++i) {
    const bool hit = rng.Bernoulli(rate);
    if (hit && op == kDrop) continue;
    out.append(lines[i]);
    out.push_back('\n');
    if (hit && op == kDup) {
      out.append(lines[i]);
      out.push_back('\n');
    }
    if (hit && op == kSplice) {
      out.append(GarbageLine(rng));
      out.push_back('\n');
    }
  }
  if (!ends_with_newline && !out.empty()) out.pop_back();
  return out;
}

}  // namespace

const char* ToString(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTruncateTail: return "truncate_tail";
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kDropLine: return "drop_line";
    case FaultKind::kDuplicateLine: return "duplicate_line";
    case FaultKind::kSpliceGarbage: return "splice_garbage";
    case FaultKind::kMixed: return "mixed";
  }
  return "unknown";
}

std::string FaultInjector::Apply(std::string_view text, FaultKind kind) const {
  if (config_.rate <= 0.0) return std::string(text);
  Pcg32 rng(config_.seed, 0xFA01u + static_cast<std::uint64_t>(kind));
  switch (kind) {
    case FaultKind::kTruncateTail:
      return TruncateTail(text, config_.rate, rng);
    case FaultKind::kBitFlip:
      return BitFlip(text, config_.rate, rng);
    case FaultKind::kDropLine:
      return PerLine(text, config_.rate, rng, kDrop);
    case FaultKind::kDuplicateLine:
      return PerLine(text, config_.rate, rng, kDup);
    case FaultKind::kSpliceGarbage:
      return PerLine(text, config_.rate, rng, kSplice);
    case FaultKind::kMixed: {
      const double r = config_.rate / 5.0;
      std::string out = PerLine(text, r, rng, kDrop);
      out = PerLine(out, r, rng, kDup);
      out = PerLine(out, r, rng, kSplice);
      out = BitFlip(out, r, rng);
      out = TruncateTail(out, r, rng);
      // Guarantee at least one parse-breaking fault so strict readers are
      // deterministically non-clean at any positive rate (the check.sh fault
      // tier asserts strict mode fails where tolerant mode succeeds).
      const std::size_t pos = out.find('\n');
      std::string garbage = GarbageLine(rng);
      if (pos == std::string::npos) {
        out.append("\n").append(garbage).append("\n");
      } else {
        out.insert(pos + 1, garbage + "\n");
      }
      return out;
    }
  }
  return std::string(text);
}

}  // namespace lockdown::util
