// Aligned console tables. Every bench binary prints the series behind its
// figure as a readable table (the "rows the paper reports").
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace lockdown::util {

/// Collects rows of string cells and renders them with per-column alignment.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a separator under the header.
  void Print(std::ostream& out) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lockdown::util
