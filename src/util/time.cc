#include "util/time.h"

#include <cstdio>
#include <stdexcept>

namespace lockdown::util {

const char* ToString(Weekday wd) noexcept {
  switch (wd) {
    case Weekday::kSunday: return "Sun";
    case Weekday::kMonday: return "Mon";
    case Weekday::kTuesday: return "Tue";
    case Weekday::kWednesday: return "Wed";
    case Weekday::kThursday: return "Thu";
    case Weekday::kFriday: return "Fri";
    case Weekday::kSaturday: return "Sat";
  }
  return "???";
}

std::int64_t DaysFromCivil(CivilDate d) noexcept {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  auto y = static_cast<std::int64_t>(d.year);
  const unsigned m = static_cast<unsigned>(d.month);
  const unsigned dd = static_cast<unsigned>(d.day);
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);              // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + dd - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;         // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate CivilFromDays(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);                   // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

Timestamp TimestampOf(CivilDate d) noexcept { return DaysFromCivil(d) * kSecondsPerDay; }

Timestamp TimestampOf(CivilDateTime dt) noexcept {
  return TimestampOf(dt.date) + dt.hour * kSecondsPerHour +
         dt.minute * kSecondsPerMinute + dt.second;
}

namespace {
std::int64_t FloorDiv(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
}  // namespace

CivilDateTime CivilOf(Timestamp ts) noexcept {
  const std::int64_t days = FloorDiv(ts, kSecondsPerDay);
  std::int64_t rem = ts - days * kSecondsPerDay;
  CivilDateTime out;
  out.date = CivilFromDays(days);
  out.hour = static_cast<int>(rem / kSecondsPerHour);
  rem %= kSecondsPerHour;
  out.minute = static_cast<int>(rem / kSecondsPerMinute);
  out.second = static_cast<int>(rem % kSecondsPerMinute);
  return out;
}

CivilDate DateOf(Timestamp ts) noexcept { return CivilFromDays(FloorDiv(ts, kSecondsPerDay)); }

std::int64_t DayIndexOf(Timestamp ts) noexcept { return FloorDiv(ts, kSecondsPerDay); }

Weekday WeekdayOf(CivilDate d) noexcept {
  // 1970-01-01 was a Thursday (weekday 4 with Sunday = 0).
  const std::int64_t days = DaysFromCivil(d);
  std::int64_t wd = (days + 4) % 7;
  if (wd < 0) wd += 7;
  return static_cast<Weekday>(wd);
}

Weekday WeekdayOf(Timestamp ts) noexcept { return WeekdayOf(DateOf(ts)); }

bool IsWeekend(Weekday wd) noexcept {
  return wd == Weekday::kSaturday || wd == Weekday::kSunday;
}

int HourOf(Timestamp ts) noexcept { return CivilOf(ts).hour; }

std::string FormatDate(CivilDate d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string FormatDateTime(Timestamp ts) {
  const CivilDateTime dt = CivilOf(ts);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", dt.date.year,
                dt.date.month, dt.date.day, dt.hour, dt.minute, dt.second);
  return buf;
}

CivilDate ParseDate(const std::string& s) {
  CivilDate d;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &d.year, &d.month, &d.day) != 3 ||
      d.month < 1 || d.month > 12 || d.day < 1 || d.day > 31) {
    throw std::invalid_argument("ParseDate: malformed date: " + s);
  }
  return d;
}

}  // namespace lockdown::util
