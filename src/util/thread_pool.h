// Fixed-size thread pool with a deterministic ParallelFor.
//
// The determinism contract every parallel caller in this codebase relies on:
// ParallelFor(n, grain, fn) decomposes [0, n) into the SAME fixed chunk set
// — chunk c covers [c*grain, min((c+1)*grain, n)) — regardless of how many
// threads execute them. Workers race only over which chunk they pick up
// next; a chunk's [begin, end) never depends on scheduling. A caller that
// (a) writes only to per-chunk or per-index slots inside fn and (b) merges
// per-chunk results in ascending chunk order therefore produces output that
// is byte-identical whether the pool has 0 workers (serial fallback, chunks
// run inline in order) or 64. tests/core/parallel_equivalence_test.cc holds
// the whole pipeline to exactly this property.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lockdown::util {

/// Effective thread count for a requested value:
///   requested >  0  -> requested
///   requested == 0  -> LOCKDOWN_THREADS if set (0 or 1 => serial),
///                      else std::thread::hardware_concurrency().
/// The result is always >= 1 (1 means "run everything on the caller").
/// A malformed LOCKDOWN_THREADS value is treated as unset.
[[nodiscard]] int ResolveThreadCount(int requested = 0) noexcept;

class ThreadPool {
 public:
  /// A pool of `threads` total execution lanes, *including* the calling
  /// thread: `threads - 1` workers are spawned, and the caller participates
  /// in every ParallelFor. `threads <= 1` spawns nothing — ParallelFor then
  /// runs all chunks inline, in chunk order.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes (workers + caller); >= 1.
  [[nodiscard]] int num_threads() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs fn(chunk, begin, end) over the fixed decomposition of [0, n) into
  /// chunks of `grain` (last chunk may be short). Blocks until every chunk
  /// has finished. The first exception thrown by fn is rethrown here (all
  /// remaining chunks still run to completion). Not reentrant: fn must not
  /// call ParallelFor on the same pool.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t chunk, std::size_t begin,
                                            std::size_t end)>& fn) const;

  /// Number of chunks ParallelFor(n, grain, ...) will produce; callers size
  /// their per-chunk shard vectors with this.
  [[nodiscard]] static std::size_t NumChunks(std::size_t n, std::size_t grain) noexcept {
    return grain == 0 ? (n != 0) : (n + grain - 1) / grain;
  }

 private:
  struct Job;

  void WorkerLoop(int lane);
  static void RunChunks(Job& job, int lane);

  std::vector<std::thread> workers_;
  // Job hand-off; mutable so ParallelFor can be const (a pool held by a
  // const study object is still usable — synchronization is internal).
  mutable Mutex mutex_;
  mutable CondVar wake_;
  mutable CondVar done_;
  // Non-null while a ParallelFor is in flight.
  mutable Job* job_ GUARDED_BY(mutex_) = nullptr;
  mutable std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;
};

}  // namespace lockdown::util
