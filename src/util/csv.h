// Minimal delimited-text writer/reader.
//
// Bench binaries emit their figure series as TSV so the data behind every
// reproduced figure can be diffed and re-plotted; the conn.log serializer in
// src/flow also builds on this.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lockdown::util {

/// Streams rows of delimited text to an ostream. Fields containing the
/// delimiter, quotes, or newlines are quoted (RFC-4180 style when the
/// delimiter is ',').
class DelimitedWriter {
 public:
  /// The writer borrows the stream; the caller keeps it alive.
  explicit DelimitedWriter(std::ostream& out, char delimiter = '\t');

  /// Writes one row; fields are escaped as needed.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: writes a header row.
  void WriteHeader(const std::vector<std::string>& names) { WriteRow(names); }

 private:
  [[nodiscard]] std::string Escape(std::string_view field) const;

  std::ostream& out_;
  char delimiter_;
};

/// Parses delimited text produced by DelimitedWriter (quoted fields
/// supported). Primarily used by tests to round-trip logs.
class DelimitedReader {
 public:
  explicit DelimitedReader(char delimiter = '\t') : delimiter_(delimiter) {}

  /// Parses a single line into fields.
  [[nodiscard]] std::vector<std::string> ParseLine(std::string_view line) const;

  /// Parses an entire document into rows.
  [[nodiscard]] std::vector<std::vector<std::string>> ParseAll(
      std::string_view text) const;

 private:
  char delimiter_;
};

}  // namespace lockdown::util
