#include "privacy/visitor_filter.h"

namespace lockdown::privacy {

void VisitorFilter::Observe(DeviceId device, util::Timestamp ts) {
  const std::int64_t day = util::DayIndexOf(ts);
  State& st = days_[device];
  if (day == st.last_day) return;
  if (st.days.insert(day).second) {
    ++st.distinct_days;
  }
  st.last_day = day;
}

void VisitorFilter::Merge(const VisitorFilter& other) {
  // Set union with a commutative count: visit order cannot change the
  // result, only which insert "wins" a duplicate (identical either way).
  // lockdown-lint: allow(LD002)
  for (const auto& [id, st] : other.days_) {
    State& dst = days_[id];
    // lockdown-lint: allow(LD002) same union argument, inner set
    for (const std::int64_t day : st.days) {
      if (dst.days.insert(day).second) ++dst.distinct_days;
    }
    dst.last_day = -1;  // invalidate the fast path; the sets are authoritative
  }
}

bool VisitorFilter::Retained(DeviceId device) const noexcept {
  const auto it = days_.find(device);
  return it != days_.end() && it->second.distinct_days >= min_days_;
}

int VisitorFilter::ActiveDays(DeviceId device) const noexcept {
  const auto it = days_.find(device);
  return it == days_.end() ? 0 : it->second.distinct_days;
}

std::size_t VisitorFilter::num_retained() const noexcept {
  std::size_t n = 0;
  for (const auto& [id, st] : days_) {
    if (st.distinct_days >= min_days_) ++n;
  }
  return n;
}

}  // namespace lockdown::privacy
