// Privacy layer: keyed pseudonymization.
//
// "To protect user privacy, the IP and MAC addresses for the devices we study
//  are anonymized, and the raw data is discarded after being processed."
//  (paper, §3)
//
// Identifiers are pseudonymized with SipHash-2-4 under a per-run 128-bit key.
// The key lives only inside the Anonymizer; once it is destroyed, pseudonyms
// cannot be linked back to real identifiers. Pseudonymization is consistent
// within a run (same MAC -> same DeviceId) so longitudinal per-device
// analyses still work.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/ipv4.h"
#include "net/mac.h"
#include "util/hash.h"

namespace lockdown::privacy {

/// Opaque stable pseudonym for a device (derived from its MAC).
struct DeviceId {
  std::uint64_t value = 0;
  friend constexpr auto operator<=>(DeviceId, DeviceId) noexcept = default;
};

struct DeviceIdHash {
  [[nodiscard]] std::size_t operator()(DeviceId id) const noexcept {
    return static_cast<std::size_t>(id.value * 0x9E3779B97F4A7C15ULL);
  }
};

/// Opaque pseudonym for a client IP address.
struct AnonIp {
  std::uint64_t value = 0;
  friend constexpr auto operator<=>(AnonIp, AnonIp) noexcept = default;
};

/// Keyed, consistent pseudonymizer for device identifiers.
class Anonymizer {
 public:
  /// The key should be drawn fresh per run (e.g. from the study seed in the
  /// simulator; from a CSPRNG in a deployment) and never persisted.
  explicit Anonymizer(util::SipHashKey key) noexcept : key_(key) {}

  [[nodiscard]] DeviceId AnonymizeMac(net::MacAddress mac) const noexcept {
    return DeviceId{util::SipHash24(key_, mac.value() | (1ULL << 63))};
  }

  [[nodiscard]] AnonIp AnonymizeIp(net::Ipv4Address ip) const noexcept {
    return AnonIp{util::SipHash24(key_, static_cast<std::uint64_t>(ip.value()))};
  }

 private:
  util::SipHashKey key_;
};

}  // namespace lockdown::privacy
