// Visitor filtering.
//
// "to avoid analyzing traffic from campus visitors we discard information for
//  devices that appear on the network for fewer than 14 days." (paper, §3)
//
// The filter counts *distinct active days* per device in a streaming pass and
// then answers membership queries. Days need not be consecutive.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "privacy/anonymizer.h"
#include "util/time.h"

namespace lockdown::privacy {

/// Streaming distinct-active-day counter with a retention threshold.
class VisitorFilter {
 public:
  /// `min_days`: minimum number of distinct days a device must appear on the
  /// network to be retained. The paper uses 14.
  explicit VisitorFilter(int min_days = 14) noexcept : min_days_(min_days) {}

  /// Records that `device` was active at `ts`.
  void Observe(DeviceId device, util::Timestamp ts);

  /// Folds another filter's observations into this one (set union of each
  /// device's active days). Because day sets are sets, merging per-shard
  /// filters in any order yields the same retention decisions as observing
  /// the whole stream serially — this is what lets the pipeline shard its
  /// attribution pass across threads.
  void Merge(const VisitorFilter& other);

  /// True if the device met the retention threshold.
  [[nodiscard]] bool Retained(DeviceId device) const noexcept;

  /// Number of distinct days the device was seen (0 if never).
  [[nodiscard]] int ActiveDays(DeviceId device) const noexcept;

  /// Total devices observed / retained.
  [[nodiscard]] std::size_t num_observed() const noexcept { return days_.size(); }
  [[nodiscard]] std::size_t num_retained() const noexcept;

  [[nodiscard]] int min_days() const noexcept { return min_days_; }

 private:
  struct State {
    std::int64_t last_day = -1;  // day index of most recent observation
    int distinct_days = 0;
    // Observations usually arrive in time order per device; `last_day` makes
    // the common case O(1). Out-of-order days fall back to the set.
    std::unordered_set<std::int64_t> days;
  };
  int min_days_;
  std::unordered_map<DeviceId, State, DeviceIdHash> days_;
};

}  // namespace lockdown::privacy
