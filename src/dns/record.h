// DNS resolution records, the schema of the campus DNS logs.
#pragma once

#include <cstdint>
#include <string>

#include "net/ipv4.h"
#include "net/mac.h"
#include "util/time.h"

namespace lockdown::dns {

/// One observed resolution: at `ts`, `client` resolved `qname` to `answer`
/// with the given TTL.
struct Resolution {
  util::Timestamp ts = 0;
  net::MacAddress client;
  std::string qname;
  net::Ipv4Address answer;
  std::int32_t ttl = 0;  ///< seconds
};

}  // namespace lockdown::dns
