#include "dns/mapper.h"

#include <algorithm>

namespace lockdown::dns {

IpToDomainMapper::IpToDomainMapper(std::span<const Resolution> log) {
  for (const Resolution& r : log) {
    auto& entries = index_[r.answer.value()];
    // Drop consecutive duplicates for the same name to keep the index small;
    // campus resolvers re-resolve popular names every TTL.
    if (!entries.empty() && entries.back().qname == r.qname) {
      continue;
    }
    entries.push_back(Entry{r.ts, r.qname});
  }
  for (auto& [ip, entries] : index_) {
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) { return a.ts < b.ts; });
  }
}

std::optional<std::string_view> IpToDomainMapper::Lookup(
    net::Ipv4Address ip, util::Timestamp ts) const noexcept {
  const auto it = index_.find(ip.value());
  if (it == index_.end()) return std::nullopt;
  const std::vector<Entry>& entries = it->second;
  auto pos = std::upper_bound(
      entries.begin(), entries.end(), ts,
      [](util::Timestamp t, const Entry& e) { return t < e.ts; });
  if (pos == entries.begin()) return std::nullopt;
  --pos;
  return std::string_view(pos->qname);
}

}  // namespace lockdown::dns
