// Simulation of the campus recursive resolver.
//
// The traffic generator asks the resolver for an address before opening each
// connection, exactly as a client stack would. The resolver picks one of the
// authoritative addresses for the name (round-robin among a service's block),
// caches it for the TTL, and appends the resolution to the DNS log that the
// pipeline later joins against.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/record.h"
#include "util/rng.h"

namespace lockdown::dns {

/// Authoritative data: resolves a name to its full address set.
/// Returning an empty span means NXDOMAIN.
using AuthorityFn =
    std::function<std::vector<net::Ipv4Address>(std::string_view qname)>;

struct ResolverConfig {
  std::int32_t default_ttl = 300;  ///< seconds
  /// Per-client negative/positive cache is modeled as one shared cache, as a
  /// campus recursive resolver would be.
  std::size_t max_log_entries = 0;  ///< 0 = unbounded
};

/// TTL-honouring caching resolver that records every new resolution in the
/// DNS log (cache hits extend no entries — the original mapping is still
/// live). Queries timestamped before the cached entry was created are
/// treated as misses so that slightly out-of-order callers still obtain a
/// log entry covering their flow.
class Resolver {
 public:
  Resolver(AuthorityFn authority, ResolverConfig config, util::Pcg32 rng);

  /// Resolves `qname` for `client` at time `now`. Returns the answer address
  /// or nullopt on NXDOMAIN. New (non-cached) answers are appended to log().
  [[nodiscard]] std::optional<net::Ipv4Address> Resolve(net::MacAddress client,
                                                        std::string_view qname,
                                                        util::Timestamp now);

  [[nodiscard]] const std::vector<Resolution>& log() const noexcept { return log_; }

  /// Cache statistics, exposed for tests and the perf bench.
  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept { return misses_; }

 private:
  struct CacheEntry {
    net::Ipv4Address answer;
    util::Timestamp created = 0;
    util::Timestamp expires = 0;
  };

  AuthorityFn authority_;
  ResolverConfig config_;
  util::Pcg32 rng_;
  std::unordered_map<std::string, CacheEntry> cache_;
  std::vector<Resolution> log_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace lockdown::dns
