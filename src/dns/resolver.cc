#include "dns/resolver.h"

namespace lockdown::dns {

Resolver::Resolver(AuthorityFn authority, ResolverConfig config, util::Pcg32 rng)
    : authority_(std::move(authority)), config_(config), rng_(rng) {}

std::optional<net::Ipv4Address> Resolver::Resolve(net::MacAddress client,
                                                  std::string_view qname,
                                                  util::Timestamp now) {
  const std::string key(qname);
  if (const auto it = cache_.find(key);
      it != cache_.end() && now >= it->second.created && now < it->second.expires) {
    ++hits_;
    return it->second.answer;
  }
  ++misses_;
  const std::vector<net::Ipv4Address> answers = authority_(qname);
  if (answers.empty()) return std::nullopt;
  const net::Ipv4Address answer =
      answers[rng_.NextBounded(static_cast<std::uint32_t>(answers.size()))];
  cache_[key] = CacheEntry{answer, now, now + config_.default_ttl};
  if (config_.max_log_entries == 0 || log_.size() < config_.max_log_entries) {
    log_.push_back(Resolution{now, client, key, answer, config_.default_ttl});
  }
  return answer;
}

}  // namespace lockdown::dns
