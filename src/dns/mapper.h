// Remote IP -> domain mapping.
//
// "we use contemporaneous DNS logs to convert remote IP addresses ... to
//  domain names (hence, allowing us to distinguish between different services
//  in use)." (paper, §3)
//
// The mapper inverts the DNS log: for each answer address it keeps the
// time-sorted resolutions, and a lookup returns the name most recently
// resolved to that address at-or-before the flow's start (a resolution
// remains usable until another name claims the address, since clients
// commonly hold connections past the TTL).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/record.h"

namespace lockdown::dns {

/// Immutable reverse index from (server IP, time) to domain name.
class IpToDomainMapper {
 public:
  explicit IpToDomainMapper(std::span<const Resolution> log);

  /// Domain most recently resolved to `ip` at or before `ts`; nullopt if the
  /// address never appeared in the log before `ts`.
  [[nodiscard]] std::optional<std::string_view> Lookup(net::Ipv4Address ip,
                                                       util::Timestamp ts) const noexcept;

  /// Number of distinct server addresses indexed.
  [[nodiscard]] std::size_t num_ips() const noexcept { return index_.size(); }

 private:
  struct Entry {
    util::Timestamp ts;
    std::string qname;
  };
  std::unordered_map<std::uint32_t, std::vector<Entry>> index_;
};

}  // namespace lockdown::dns
