#include "apps/social.h"

#include "util/strings.h"

namespace lockdown::apps {

namespace {
bool AnyMatch(std::string_view host, const std::vector<std::string>& domains) {
  for (const std::string& d : domains) {
    if (util::DomainMatches(host, d)) return true;
  }
  return false;
}
}  // namespace

const char* ToString(SocialApp app) noexcept {
  switch (app) {
    case SocialApp::kFacebook: return "facebook";
    case SocialApp::kInstagram: return "instagram";
    case SocialApp::kTikTok: return "tiktok";
  }
  return "???";
}

SocialMediaSignatures::SocialMediaSignatures()
    : facebook_domains_{"facebook.com", "facebook.net", "fbcdn.net"},
      instagram_domains_{"instagram.com", "cdninstagram.com"},
      tiktok_domains_{"tiktok.com", "tiktokv.com", "tiktokcdn.com", "muscdn.com"} {}

bool SocialMediaSignatures::IsFacebookFamily(std::string_view host) const {
  return AnyMatch(host, facebook_domains_) || AnyMatch(host, instagram_domains_);
}

bool SocialMediaSignatures::IsInstagramOnly(std::string_view host) const {
  return AnyMatch(host, instagram_domains_);
}

bool SocialMediaSignatures::IsTikTok(std::string_view host) const {
  return AnyMatch(host, tiktok_domains_);
}

}  // namespace lockdown::apps
