// Steam signature (paper §5.3.1): "We developed a signature for Steam, an
// online platform for PC games, from the set of domains that their customer
// support recommends whitelisting."
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lockdown::apps {

class SteamSignature {
 public:
  SteamSignature();

  [[nodiscard]] bool Matches(std::string_view host) const;
  [[nodiscard]] const std::vector<std::string>& domains() const noexcept {
    return domains_;
  }

 private:
  std::vector<std::string> domains_;
};

}  // namespace lockdown::apps
