// Nintendo Switch traffic signatures (paper §5.3.2): the domain list a
// Switch contacts (cross-checked against 90DNS in the paper) and the subset
// used for "system updates, game updates and downloads, and other
// non-gameplay traffic", which is filtered out to isolate gameplay.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lockdown::apps {

class NintendoSignature {
 public:
  NintendoSignature();

  /// Any Nintendo server domain (gameplay or not).
  [[nodiscard]] bool IsNintendo(std::string_view host) const;

  /// Gameplay traffic: Nintendo domains that are not update/download/
  /// account/telemetry endpoints.
  [[nodiscard]] bool IsGameplay(std::string_view host) const;

  [[nodiscard]] const std::vector<std::string>& gameplay_domains() const noexcept {
    return gameplay_;
  }
  [[nodiscard]] const std::vector<std::string>& non_gameplay_domains() const noexcept {
    return non_gameplay_;
  }

 private:
  std::vector<std::string> gameplay_;
  std::vector<std::string> non_gameplay_;
};

}  // namespace lockdown::apps
