#include "apps/steam.h"

#include "util/strings.h"

namespace lockdown::apps {

SteamSignature::SteamSignature()
    : domains_{"steampowered.com", "steamcommunity.com", "steamcontent.com",
               "steamusercontent.com", "steamstatic.com"} {}

bool SteamSignature::Matches(std::string_view host) const {
  for (const std::string& d : domains_) {
    if (util::DomainMatches(host, d)) return true;
  }
  return false;
}

}  // namespace lockdown::apps
