#include "apps/nintendo.h"

#include "util/strings.h"

namespace lockdown::apps {

namespace {
bool AnyMatch(std::string_view host, const std::vector<std::string>& domains) {
  for (const std::string& d : domains) {
    if (util::DomainMatches(host, d)) return true;
  }
  return false;
}
}  // namespace

NintendoSignature::NintendoSignature()
    : gameplay_{"npln.srv.nintendo.net", "p2prel.srv.nintendo.net",
                "mm.p2p.srv.nintendo.net", "nncs1.app.nintendowifi.net"},
      non_gameplay_{"atum.hac.lp1.d4c.nintendo.net", "sun.hac.lp1.d4c.nintendo.net",
                    "accounts.nintendo.com", "ctest.cdn.nintendo.net",
                    "receive-lp1.dg.srv.nintendo.net", "conntest.nintendowifi.net"} {}

bool NintendoSignature::IsNintendo(std::string_view host) const {
  return AnyMatch(host, gameplay_) || AnyMatch(host, non_gameplay_);
}

bool NintendoSignature::IsGameplay(std::string_view host) const {
  return AnyMatch(host, gameplay_);
}

}  // namespace lockdown::apps
