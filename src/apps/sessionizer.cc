#include "apps/sessionizer.h"

#include <algorithm>

namespace lockdown::apps {

std::vector<Session> MergeSessions(std::vector<FlowInterval> flows,
                                   util::Timestamp max_gap) {
  std::vector<Session> out;
  if (flows.empty()) return out;
  std::sort(flows.begin(), flows.end(),
            [](const FlowInterval& a, const FlowInterval& b) {
              return a.start < b.start;
            });
  Session cur;
  cur.start = flows[0].start;
  cur.end = flows[0].end;
  cur.domains = {flows[0].domain};
  cur.bytes = flows[0].bytes;
  cur.flow_count = 1;

  auto flush = [&out](Session& s) {
    std::sort(s.domains.begin(), s.domains.end());
    s.domains.erase(std::unique(s.domains.begin(), s.domains.end()),
                    s.domains.end());
    out.push_back(std::move(s));
  };

  for (std::size_t i = 1; i < flows.size(); ++i) {
    const FlowInterval& f = flows[i];
    if (f.start <= cur.end + max_gap) {
      cur.end = std::max(cur.end, f.end);
      cur.domains.push_back(f.domain);
      cur.bytes += f.bytes;
      ++cur.flow_count;
    } else {
      flush(cur);
      cur = Session{};
      cur.start = f.start;
      cur.end = f.end;
      cur.domains = {f.domain};
      cur.bytes = f.bytes;
      cur.flow_count = 1;
    }
  }
  flush(cur);
  return out;
}

}  // namespace lockdown::apps
