// Domain signatures for application attribution.
//
// Every application analysis in the paper starts from a list of domains
// ("we developed a signature for Steam from the set of domains that their
//  customer support recommends whitelisting", §5.3.1). A signature matches a
// hostname if it equals or is a subdomain of any signature domain. The
// registry indexes many signatures for single-pass matching; lookup walks
// the host's label boundaries, so it is O(#labels), not O(#signatures) — the
// perf bench compares this against the naive scan.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lockdown::apps {

class DomainSignature {
 public:
  DomainSignature(std::string name, std::vector<std::string> domains);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<std::string>& domains() const noexcept {
    return domains_;
  }

  /// True if host equals or is a subdomain of any signature domain.
  [[nodiscard]] bool Matches(std::string_view host) const noexcept;

 private:
  std::string name_;
  std::vector<std::string> domains_;
};

/// Transparent string hash so the registry can look up string_views without
/// allocating.
struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

using AppId = std::uint16_t;
inline constexpr AppId kNoApp = 0xFFFF;

class SignatureRegistry {
 public:
  /// Registers a signature; returns its id. Domains must not collide with an
  /// already-registered signature (throws std::invalid_argument).
  AppId Add(DomainSignature signature);

  [[nodiscard]] const DomainSignature& Get(AppId id) const { return sigs_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return sigs_.size(); }

  /// Indexed match: id of the signature owning `host`, if any.
  [[nodiscard]] std::optional<AppId> Match(std::string_view host) const;

  /// Reference linear scan over all signatures (baseline for the perf bench
  /// and a validation oracle in tests).
  [[nodiscard]] std::optional<AppId> MatchLinear(std::string_view host) const;

 private:
  std::vector<DomainSignature> sigs_;
  std::unordered_map<std::string, AppId, StringHash, std::equal_to<>> suffix_index_;
};

}  // namespace lockdown::apps
