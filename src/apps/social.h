// Social-media signatures and the Facebook/Instagram disambiguation
// heuristic (paper §5.2):
//
//  "the aforementioned Facebook domains serve content for both Facebook and
//   Instagram services. We use a simple heuristic to differentiate... if any
//   of the domains in a set of overlapping flows delivers Instagram-only
//   content (e.g. traffic from instagram.com), then we mark the entire
//   session as an Instagram session. Otherwise, we mark the session as
//   Facebook."
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "apps/sessionizer.h"
#include "apps/signature.h"

namespace lockdown::apps {

enum class SocialApp : std::uint8_t { kFacebook, kInstagram, kTikTok };

[[nodiscard]] const char* ToString(SocialApp app) noexcept;

class SocialMediaSignatures {
 public:
  /// The signatures the paper derived "manually analyz[ing] traffic from a
  /// laptop and mobile device".
  SocialMediaSignatures();

  /// True if the host belongs to the Facebook *or* Instagram platform
  /// (the shared-domain superset a session is first assembled from).
  [[nodiscard]] bool IsFacebookFamily(std::string_view host) const;

  /// True if the host serves Instagram-only content.
  [[nodiscard]] bool IsInstagramOnly(std::string_view host) const;

  /// True if the host belongs to TikTok.
  [[nodiscard]] bool IsTikTok(std::string_view host) const;

  /// Applies the disambiguation heuristic to a merged session, given a
  /// predicate mapping the session's opaque domain tags back to hostnames.
  template <typename HostOf>
  [[nodiscard]] SocialApp ClassifySession(const Session& session,
                                          HostOf&& host_of) const {
    for (const std::uint32_t tag : session.domains) {
      if (IsInstagramOnly(host_of(tag))) return SocialApp::kInstagram;
    }
    return SocialApp::kFacebook;
  }

  [[nodiscard]] const std::vector<std::string>& facebook_domains() const noexcept {
    return facebook_domains_;
  }
  [[nodiscard]] const std::vector<std::string>& instagram_domains() const noexcept {
    return instagram_domains_;
  }
  [[nodiscard]] const std::vector<std::string>& tiktok_domains() const noexcept {
    return tiktok_domains_;
  }

 private:
  std::vector<std::string> facebook_domains_;   // shared + FB-specific
  std::vector<std::string> instagram_domains_;  // Instagram-only
  std::vector<std::string> tiktok_domains_;
};

}  // namespace lockdown::apps
