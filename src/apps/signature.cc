#include "apps/signature.h"

#include <stdexcept>

#include "util/strings.h"

namespace lockdown::apps {

DomainSignature::DomainSignature(std::string name, std::vector<std::string> domains)
    : name_(std::move(name)), domains_(std::move(domains)) {}

bool DomainSignature::Matches(std::string_view host) const noexcept {
  for (const std::string& d : domains_) {
    if (util::DomainMatches(host, d)) return true;
  }
  return false;
}

AppId SignatureRegistry::Add(DomainSignature signature) {
  if (sigs_.size() >= kNoApp) {
    throw std::length_error("SignatureRegistry full");
  }
  const auto id = static_cast<AppId>(sigs_.size());
  for (const std::string& d : signature.domains()) {
    if (!suffix_index_.emplace(d, id).second) {
      throw std::invalid_argument("SignatureRegistry: domain registered twice: " + d);
    }
  }
  sigs_.push_back(std::move(signature));
  return id;
}

std::optional<AppId> SignatureRegistry::Match(std::string_view host) const {
  std::string_view rest = host;
  for (;;) {
    const auto it = suffix_index_.find(rest);
    if (it != suffix_index_.end()) return it->second;
    const auto dot = rest.find('.');
    if (dot == std::string_view::npos) return std::nullopt;
    rest = rest.substr(dot + 1);
  }
}

std::optional<AppId> SignatureRegistry::MatchLinear(std::string_view host) const {
  for (AppId id = 0; id < sigs_.size(); ++id) {
    if (sigs_[id].Matches(host)) return id;
  }
  return std::nullopt;
}

}  // namespace lockdown::apps
