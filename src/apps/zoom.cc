#include "apps/zoom.h"

#include <stdexcept>

#include "util/strings.h"

namespace lockdown::apps {

ZoomMatcher::ZoomMatcher(std::vector<std::string> domains,
                         std::vector<net::Cidr> current_ranges,
                         std::vector<net::Cidr> historical_ranges)
    : domains_(std::move(domains)),
      current_(std::move(current_ranges)),
      historical_(std::move(historical_ranges)) {}

ZoomMatcher::ZoomMatcher(const world::ServiceCatalog& catalog) {
  const auto zoom = catalog.FindByName("zoom");
  const auto media = catalog.FindByName("zoom-media");
  const auto legacy = catalog.FindByName("zoom-media-legacy");
  if (!zoom || !media || !legacy) {
    throw std::invalid_argument("ZoomMatcher: catalog lacks zoom services");
  }
  // The signature domain is the registrable zone, as the support page lists.
  domains_.push_back("zoom.us");
  (void)catalog.Get(*zoom);
  current_.push_back(catalog.Get(*media).block);
  historical_.push_back(catalog.Get(*legacy).block);
}

bool ZoomMatcher::MatchesDomain(std::string_view host) const {
  for (const std::string& d : domains_) {
    if (util::DomainMatches(host, d)) return true;
  }
  return false;
}

bool ZoomMatcher::MatchesCurrentIp(net::Ipv4Address ip) const {
  for (net::Cidr c : current_) {
    if (c.Contains(ip)) return true;
  }
  return false;
}

bool ZoomMatcher::MatchesHistoricalIp(net::Ipv4Address ip) const {
  for (net::Cidr c : historical_) {
    if (c.Contains(ip)) return true;
  }
  return false;
}

bool ZoomMatcher::IsZoom(std::string_view host, net::Ipv4Address server) const {
  if (!host.empty() && MatchesDomain(host)) return true;
  return MatchesCurrentIp(server) || MatchesHistoricalIp(server);
}

}  // namespace lockdown::apps
