// Zoom attribution (paper §5.1): "we identify all connections that resolve
// to a zoom.us domain. We also analyze connections where an IP address
// matches a list of IP addresses from Zoom support, and use the Internet
// Archive Wayback Machine to find any IP addresses that were previously
// listed on this page, but were subsequently removed."
#pragma once

#include <string_view>
#include <vector>

#include "net/ipv4.h"
#include "world/catalog.h"

namespace lockdown::apps {

class ZoomMatcher {
 public:
  /// Builds the matcher from explicit lists: the published domain list, the
  /// current IP ranges, and the historical (wayback-recovered) ranges.
  ZoomMatcher(std::vector<std::string> domains, std::vector<net::Cidr> current_ranges,
              std::vector<net::Cidr> historical_ranges);

  /// Builds from the catalog (the reproduction's stand-in for the published
  /// lists): "zoom" hosts, "zoom-media" block as current, "zoom-media-legacy"
  /// as historical.
  explicit ZoomMatcher(const world::ServiceCatalog& catalog);

  /// True if the flow is Zoom traffic: its DNS-mapped hostname matches a
  /// Zoom domain, or its server address is in a published (or historical) IP
  /// range. `host` may be empty for raw-IP flows.
  [[nodiscard]] bool IsZoom(std::string_view host, net::Ipv4Address server) const;

  [[nodiscard]] bool MatchesDomain(std::string_view host) const;
  [[nodiscard]] bool MatchesCurrentIp(net::Ipv4Address ip) const;
  [[nodiscard]] bool MatchesHistoricalIp(net::Ipv4Address ip) const;

 private:
  std::vector<std::string> domains_;
  std::vector<net::Cidr> current_;
  std::vector<net::Cidr> historical_;
};

}  // namespace lockdown::apps
