// Session reconstruction from overlapping flows (paper §5.2):
//
//  "the social media sites often use multiple domains to serve content to
//   users... to compute the duration of an entire user session, we find the
//   bounds of overlapping flows from different domains belonging to the
//   same site."
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/time.h"

namespace lockdown::apps {

/// One input flow: its time bounds and an opaque domain tag (callers pass an
/// interned domain id).
struct FlowInterval {
  util::Timestamp start = 0;
  util::Timestamp end = 0;
  std::uint32_t domain = 0;
  std::uint64_t bytes = 0;
};

/// A merged session: the union bounds of a maximal set of overlapping flows.
struct Session {
  util::Timestamp start = 0;
  util::Timestamp end = 0;
  std::vector<std::uint32_t> domains;  ///< distinct domain tags, sorted
  std::uint64_t bytes = 0;
  int flow_count = 0;

  [[nodiscard]] double duration_s() const noexcept {
    return static_cast<double>(end - start);
  }
};

/// Merges flows into sessions. Flows overlap if their intervals intersect
/// (or touch within `max_gap` seconds — 0 reproduces the paper's strict
/// overlap rule). Input order does not matter.
[[nodiscard]] std::vector<Session> MergeSessions(std::vector<FlowInterval> flows,
                                                 util::Timestamp max_gap = 0);

}  // namespace lockdown::apps
