// Flow records: the conn.log-equivalent output of flow assembly, and the
// device-attributed record the analyses consume.
#pragma once

#include <cstdint>

#include "net/endpoint.h"
#include "util/time.h"

namespace lockdown::flow {

/// A completed connection as extracted from the tap (pre-attribution: the
/// client is still a dynamic IP, the server still a bare address).
struct FlowRecord {
  util::Timestamp start = 0;
  double duration_s = 0.0;
  net::Ipv4Address client_ip;
  net::Ipv4Address server_ip;
  net::Port server_port = 0;
  net::Protocol proto = net::Protocol::kTcp;
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bytes_up + bytes_down;
  }
  [[nodiscard]] util::Timestamp end() const noexcept {
    return start + static_cast<util::Timestamp>(duration_s);
  }
};

}  // namespace lockdown::flow
