// conn.log-style serialization of flow records (Zeek-compatible field
// layout: ts, duration, orig/resp endpoints, byte counts).
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "flow/record.h"
#include "ingest/ingest.h"

namespace lockdown::flow {

/// Writes records as a TSV document with a header line.
void WriteConnLog(std::ostream& out, const std::vector<FlowRecord>& records);

/// Parses a conn.log document produced by WriteConnLog. Returns nullopt if
/// the header is missing or a row is malformed (strict-mode read).
[[nodiscard]] std::optional<std::vector<FlowRecord>> ReadConnLog(std::string_view text);

/// Fault-tolerant read: line-granular recovery under `options`, with every
/// skipped row classified and accounted in `report` (see ingest/ingest.h).
[[nodiscard]] std::optional<std::vector<FlowRecord>> ReadConnLog(
    std::string_view text, const ingest::IngestOptions& options,
    ingest::IngestReport& report);

}  // namespace lockdown::flow
