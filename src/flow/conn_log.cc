#include "flow/conn_log.h"

#include <charconv>
#include <cstdlib>
#include <ostream>

#include "util/csv.h"
#include "util/strings.h"

namespace lockdown::flow {

namespace {
constexpr std::string_view kHeader =
    "ts\tduration\tid.orig_h\tid.resp_h\tid.resp_p\tproto\torig_bytes\tresp_bytes";

template <typename T>
bool ParseNum(std::string_view s, T& out) {
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, out);
  return res.ec == std::errc() && res.ptr == end;
}

bool ParseDouble(std::string_view s, double& out) {
  // from_chars for double is unreliable pre-GCC11 in some configs; strtod via
  // a bounded buffer keeps this dependency-free.
  char buf[64];
  if (s.size() >= sizeof(buf)) return false;
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + s.size();
}

/// Parses one data row; nullopt on success. The acceptance set is exactly
/// the historical ReadConnLog's — only the failure is now classified.
std::optional<ingest::ErrorClass> ParseRow(std::string_view raw, FlowRecord& r) {
  const std::string_view line = util::Trim(raw);
  const auto fields = util::Split(line, '\t');
  if (fields.size() != 8) return ingest::ErrorClass::kFieldCount;
  if (!ParseNum(fields[0], r.start)) return ingest::ErrorClass::kBadTimestamp;
  if (!ParseDouble(fields[1], r.duration_s)) return ingest::ErrorClass::kBadNumber;
  const auto client = net::Ipv4Address::Parse(fields[2]);
  if (!client) return ingest::ErrorClass::kBadIp;
  const auto server = net::Ipv4Address::Parse(fields[3]);
  if (!server) return ingest::ErrorClass::kBadIp;
  unsigned port = 0;
  if (!ParseNum(fields[4], port) || port > 65535) {
    return ingest::ErrorClass::kBadNumber;
  }
  if (fields[5] == "tcp") {
    r.proto = net::Protocol::kTcp;
  } else if (fields[5] == "udp") {
    r.proto = net::Protocol::kUdp;
  } else {
    return ingest::ErrorClass::kBadValue;
  }
  if (!ParseNum(fields[6], r.bytes_up)) return ingest::ErrorClass::kBadNumber;
  if (!ParseNum(fields[7], r.bytes_down)) return ingest::ErrorClass::kBadNumber;
  r.client_ip = *client;
  r.server_ip = *server;
  r.server_port = static_cast<net::Port>(port);
  return std::nullopt;
}
}  // namespace

void WriteConnLog(std::ostream& out, const std::vector<FlowRecord>& records) {
  out << kHeader << '\n';
  for (const FlowRecord& r : records) {
    out << r.start << '\t' << r.duration_s << '\t' << r.client_ip.ToString()
        << '\t' << r.server_ip.ToString() << '\t' << r.server_port << '\t'
        << net::ToString(r.proto) << '\t' << r.bytes_up << '\t' << r.bytes_down
        << '\n';
  }
}

std::optional<std::vector<FlowRecord>> ReadConnLog(
    std::string_view text, const ingest::IngestOptions& options,
    ingest::IngestReport& report) {
  return ingest::ParseLog<FlowRecord>(text, kHeader, options, report, ParseRow);
}

std::optional<std::vector<FlowRecord>> ReadConnLog(std::string_view text) {
  ingest::IngestReport report;
  return ReadConnLog(text, ingest::IngestOptions{}, report);
}

}  // namespace lockdown::flow
