// Events at the network tap.
//
// The tap mirrors traffic between the residential network and the campus
// backbone. We model what Zeek's connection tracking consumes: connection
// open, data, and close events keyed by 5-tuple. (Generating individual
// packets would be needlessly expensive; Zeek's conn.log is itself an
// aggregate over packets, and every downstream analysis consumes conn-level
// records.)
#pragma once

#include <cstdint>

#include "net/endpoint.h"
#include "util/time.h"

namespace lockdown::flow {

enum class EventKind : std::uint8_t {
  kOpen,   ///< first packet of a connection
  kData,   ///< bytes transferred since the previous event
  kClose,  ///< connection teardown observed
};

/// One tap event. `bytes_up` is client->server, `bytes_down` server->client.
struct TapEvent {
  util::Timestamp ts = 0;
  EventKind kind = EventKind::kOpen;
  net::FiveTuple tuple;  ///< src = client (dorm device), dst = remote server
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
};

}  // namespace lockdown::flow
