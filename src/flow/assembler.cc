#include "flow/assembler.h"

#include <utility>
#include <vector>

namespace lockdown::flow {

Assembler::Assembler(AssemblerConfig config, Sink sink)
    : config_(config), sink_(std::move(sink)) {}

void Assembler::Emit(const net::FiveTuple& tuple, const Live& live) {
  FlowRecord rec;
  rec.start = live.start;
  rec.duration_s = static_cast<double>(live.last_activity - live.start);
  rec.client_ip = tuple.src_ip;
  rec.server_ip = tuple.dst_ip;
  rec.server_port = tuple.dst_port;
  rec.proto = tuple.proto;
  rec.bytes_up = live.bytes_up;
  rec.bytes_down = live.bytes_down;
  ++emitted_;
  sink_(rec);
}

void Assembler::SweepIdle(util::Timestamp now) {
  // Collect-then-erase keeps iterator semantics simple; the sweep runs at
  // most once per sweep_interval so the extra pass is cheap.
  std::vector<net::FiveTuple> idle;
  for (const auto& [tuple, live] : table_) {
    if (now - live.last_activity >= config_.inactivity_timeout) {
      idle.push_back(tuple);
    }
  }
  for (const net::FiveTuple& tuple : idle) {
    const auto it = table_.find(tuple);
    Emit(tuple, it->second);
    table_.erase(it);
  }
}

void Assembler::Ingest(const TapEvent& event) {
  const util::Timestamp ts = event.ts < now_ ? now_ : event.ts;
  now_ = ts;
  if (now_ - last_sweep_ >= config_.sweep_interval) {
    SweepIdle(now_);
    last_sweep_ = now_;
  }

  switch (event.kind) {
    case EventKind::kOpen: {
      auto [it, inserted] = table_.try_emplace(event.tuple);
      if (!inserted) {
        // Tuple reuse while an old connection lingers: flush the old one.
        Emit(event.tuple, it->second);
        it->second = Live{};
      }
      it->second.start = ts;
      it->second.last_activity = ts;
      it->second.bytes_up = event.bytes_up;
      it->second.bytes_down = event.bytes_down;
      break;
    }
    case EventKind::kData: {
      const auto it = table_.find(event.tuple);
      if (it == table_.end()) {
        // Mid-stream capture of a connection whose open we missed: treat the
        // first sighting as the open, as Zeek does for partial connections.
        ++partials_;
        Live live;
        live.start = ts;
        live.last_activity = ts;
        live.bytes_up = event.bytes_up;
        live.bytes_down = event.bytes_down;
        table_.emplace(event.tuple, live);
        break;
      }
      it->second.last_activity = ts;
      it->second.bytes_up += event.bytes_up;
      it->second.bytes_down += event.bytes_down;
      break;
    }
    case EventKind::kClose: {
      const auto it = table_.find(event.tuple);
      if (it == table_.end()) {
        ++partials_;
        break;
      }
      it->second.last_activity = ts;
      it->second.bytes_up += event.bytes_up;
      it->second.bytes_down += event.bytes_down;
      Emit(event.tuple, it->second);
      table_.erase(it);
      break;
    }
  }
}

void Assembler::Finish() {
  for (const auto& [tuple, live] : table_) Emit(tuple, live);
  table_.clear();
}

}  // namespace lockdown::flow
