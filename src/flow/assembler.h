// Zeek-style connection tracking.
//
// The assembler maintains a table of live connections keyed by 5-tuple,
// accumulates data events, and emits a FlowRecord when the connection closes
// or goes idle past the inactivity timeout (mirroring Zeek's
// tcp_inactivity_timeout behaviour: a long-lived session with an idle gap is
// reported as multiple flows). Events must arrive in non-decreasing time
// order, as they do from a tap.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "flow/event.h"
#include "flow/record.h"

namespace lockdown::flow {

struct AssemblerConfig {
  /// Idle gap after which a live connection is flushed as complete.
  util::Timestamp inactivity_timeout = 15 * util::kSecondsPerMinute;
  /// How often to sweep the table for idle connections.
  util::Timestamp sweep_interval = util::kSecondsPerMinute;
};

/// Streaming flow extractor. Emits records through a sink callback so the
/// pipeline never buffers the full connection set.
class Assembler {
 public:
  using Sink = std::function<void(const FlowRecord&)>;

  Assembler(AssemblerConfig config, Sink sink);

  /// Feeds one tap event. Events must be in non-decreasing `ts` order;
  /// out-of-order events are clamped to the current time.
  void Ingest(const TapEvent& event);

  /// Flushes every live connection (end of capture).
  void Finish();

  /// Live connections currently tracked.
  [[nodiscard]] std::size_t table_size() const noexcept { return table_.size(); }

  /// Records emitted so far.
  [[nodiscard]] std::uint64_t records_emitted() const noexcept { return emitted_; }

  /// Events whose tuple had no open connection (data/close without open);
  /// Zeek reports these as partial connections, we count and fold them in.
  [[nodiscard]] std::uint64_t partial_events() const noexcept { return partials_; }

 private:
  struct Live {
    util::Timestamp start = 0;
    util::Timestamp last_activity = 0;
    std::uint64_t bytes_up = 0;
    std::uint64_t bytes_down = 0;
  };

  void Emit(const net::FiveTuple& tuple, const Live& live);
  void SweepIdle(util::Timestamp now);

  AssemblerConfig config_;
  Sink sink_;
  std::unordered_map<net::FiveTuple, Live, net::FiveTupleHash> table_;
  util::Timestamp now_ = 0;
  util::Timestamp last_sweep_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t partials_ = 0;
};

}  // namespace lockdown::flow
