#include "logs/ua_log.h"

#include <charconv>
#include <ostream>

#include "util/strings.h"

namespace lockdown::logs {

namespace {
constexpr std::string_view kHeader = "ts\tclient\tuser_agent";
}

void WriteUaLog(std::ostream& out, const std::vector<UaRecord>& records) {
  out << kHeader << '\n';
  for (const UaRecord& r : records) {
    out << r.ts << '\t' << r.client_ip.ToString() << '\t';
    for (char c : r.user_agent) {
      out << (c == '\t' || c == '\n' ? ' ' : c);
    }
    out << '\n';
  }
}

std::optional<std::vector<UaRecord>> ReadUaLog(std::string_view text) {
  const auto lines = util::Split(text, '\n');
  if (lines.empty() || util::Trim(lines[0]) != kHeader) return std::nullopt;
  std::vector<UaRecord> out;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (util::Trim(line).empty()) continue;
    const auto fields = util::Split(line, '\t');
    if (fields.size() != 3) return std::nullopt;
    UaRecord r;
    const auto* end = fields[0].data() + fields[0].size();
    const auto res = std::from_chars(fields[0].data(), end, r.ts);
    // ec catches overflow: an out-of-range ts consumes every digit (ptr ==
    // end) but must still reject the row, not record timestamp 0.
    if (res.ec != std::errc() || res.ptr != end) return std::nullopt;
    const auto ip = net::Ipv4Address::Parse(fields[1]);
    if (!ip || fields[2].empty()) return std::nullopt;
    r.client_ip = *ip;
    r.user_agent = std::string(util::Trim(fields[2]));
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace lockdown::logs
