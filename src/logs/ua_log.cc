#include "logs/ua_log.h"

#include <charconv>
#include <ostream>

#include "util/strings.h"

namespace lockdown::logs {

namespace {
constexpr std::string_view kHeader = "ts\tclient\tuser_agent";

std::optional<ingest::ErrorClass> ParseRow(std::string_view raw, UaRecord& r) {
  // The UA field may contain any byte except tab/newline, so the raw line is
  // split untrimmed (the agent text is trimmed on its own at the end).
  const auto fields = util::Split(raw, '\t');
  if (fields.size() != 3) return ingest::ErrorClass::kFieldCount;
  const auto* end = fields[0].data() + fields[0].size();
  const auto res = std::from_chars(fields[0].data(), end, r.ts);
  // ec catches overflow: an out-of-range ts consumes every digit (ptr ==
  // end) but must still reject the row, not record timestamp 0.
  if (res.ec != std::errc() || res.ptr != end) {
    return ingest::ErrorClass::kBadTimestamp;
  }
  const auto ip = net::Ipv4Address::Parse(fields[1]);
  if (!ip) return ingest::ErrorClass::kBadIp;
  if (fields[2].empty()) return ingest::ErrorClass::kBadValue;
  r.client_ip = *ip;
  r.user_agent = std::string(util::Trim(fields[2]));
  return std::nullopt;
}
}  // namespace

void WriteUaLog(std::ostream& out, const std::vector<UaRecord>& records) {
  out << kHeader << '\n';
  for (const UaRecord& r : records) {
    out << r.ts << '\t' << r.client_ip.ToString() << '\t';
    for (char c : r.user_agent) {
      out << (c == '\t' || c == '\n' ? ' ' : c);
    }
    out << '\n';
  }
}

std::optional<std::vector<UaRecord>> ReadUaLog(
    std::string_view text, const ingest::IngestOptions& options,
    ingest::IngestReport& report) {
  return ingest::ParseLog<UaRecord>(text, kHeader, options, report, ParseRow);
}

std::optional<std::vector<UaRecord>> ReadUaLog(std::string_view text) {
  ingest::IngestReport report;
  return ReadUaLog(text, ingest::IngestOptions{}, report);
}

}  // namespace lockdown::logs
