// On-disk DHCP log format (TSV with header), so the pipeline can run from
// collected logs rather than a live tap — the deployment mode of DeKoven et
// al.'s infrastructure.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "dhcp/lease.h"
#include "ingest/ingest.h"

namespace lockdown::logs {

/// Writes leases as "start\tend\tmac\tip" rows under a header.
void WriteDhcpLog(std::ostream& out, std::span<const dhcp::Lease> leases);

/// Parses a document produced by WriteDhcpLog; nullopt on malformed input
/// (strict-mode read).
[[nodiscard]] std::optional<std::vector<dhcp::Lease>> ReadDhcpLog(
    std::string_view text);

/// Fault-tolerant read with line-granular recovery (see ingest/ingest.h).
[[nodiscard]] std::optional<std::vector<dhcp::Lease>> ReadDhcpLog(
    std::string_view text, const ingest::IngestOptions& options,
    ingest::IngestReport& report);

}  // namespace lockdown::logs
