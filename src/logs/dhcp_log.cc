#include "logs/dhcp_log.h"

#include <charconv>
#include <ostream>

#include "util/strings.h"

namespace lockdown::logs {

namespace {
constexpr std::string_view kHeader = "start\tend\tmac\tip";

template <typename T>
bool ParseNum(std::string_view s, T& out) {
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, out);
  return res.ec == std::errc() && res.ptr == end;
}

std::optional<ingest::ErrorClass> ParseRow(std::string_view raw, dhcp::Lease& lease) {
  const std::string_view line = util::Trim(raw);
  const auto fields = util::Split(line, '\t');
  if (fields.size() != 4) return ingest::ErrorClass::kFieldCount;
  if (!ParseNum(fields[0], lease.start)) return ingest::ErrorClass::kBadTimestamp;
  if (!ParseNum(fields[1], lease.end)) return ingest::ErrorClass::kBadTimestamp;
  const auto mac = net::MacAddress::Parse(fields[2]);
  if (!mac) return ingest::ErrorClass::kBadMac;
  const auto ip = net::Ipv4Address::Parse(fields[3]);
  if (!ip) return ingest::ErrorClass::kBadIp;
  lease.mac = *mac;
  lease.ip = *ip;
  return std::nullopt;
}
}  // namespace

void WriteDhcpLog(std::ostream& out, std::span<const dhcp::Lease> leases) {
  out << kHeader << '\n';
  for (const dhcp::Lease& lease : leases) {
    out << lease.start << '\t' << lease.end << '\t' << lease.mac.ToString()
        << '\t' << lease.ip.ToString() << '\n';
  }
}

std::optional<std::vector<dhcp::Lease>> ReadDhcpLog(
    std::string_view text, const ingest::IngestOptions& options,
    ingest::IngestReport& report) {
  return ingest::ParseLog<dhcp::Lease>(text, kHeader, options, report, ParseRow);
}

std::optional<std::vector<dhcp::Lease>> ReadDhcpLog(std::string_view text) {
  ingest::IngestReport report;
  return ReadDhcpLog(text, ingest::IngestOptions{}, report);
}

}  // namespace lockdown::logs
