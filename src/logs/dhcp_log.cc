#include "logs/dhcp_log.h"

#include <charconv>
#include <ostream>

#include "util/strings.h"

namespace lockdown::logs {

namespace {
constexpr std::string_view kHeader = "start\tend\tmac\tip";

template <typename T>
bool ParseNum(std::string_view s, T& out) {
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, out);
  return res.ec == std::errc() && res.ptr == end;
}
}  // namespace

void WriteDhcpLog(std::ostream& out, std::span<const dhcp::Lease> leases) {
  out << kHeader << '\n';
  for (const dhcp::Lease& lease : leases) {
    out << lease.start << '\t' << lease.end << '\t' << lease.mac.ToString()
        << '\t' << lease.ip.ToString() << '\n';
  }
}

std::optional<std::vector<dhcp::Lease>> ReadDhcpLog(std::string_view text) {
  const auto lines = util::Split(text, '\n');
  if (lines.empty() || util::Trim(lines[0]) != kHeader) return std::nullopt;
  std::vector<dhcp::Lease> out;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = util::Trim(lines[i]);
    if (line.empty()) continue;
    const auto fields = util::Split(line, '\t');
    if (fields.size() != 4) return std::nullopt;
    dhcp::Lease lease;
    const auto mac = net::MacAddress::Parse(fields[2]);
    const auto ip = net::Ipv4Address::Parse(fields[3]);
    if (!ParseNum(fields[0], lease.start) || !ParseNum(fields[1], lease.end) ||
        !mac || !ip) {
      return std::nullopt;
    }
    lease.mac = *mac;
    lease.ip = *ip;
    out.push_back(lease);
  }
  return out;
}

}  // namespace lockdown::logs
