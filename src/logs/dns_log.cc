#include "logs/dns_log.h"

#include <charconv>
#include <ostream>

#include "util/strings.h"

namespace lockdown::logs {

namespace {
constexpr std::string_view kHeader = "ts\tclient\tqname\tanswer\tttl";

template <typename T>
bool ParseNum(std::string_view s, T& out) {
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, out);
  return res.ec == std::errc() && res.ptr == end;
}
}  // namespace

void WriteDnsLog(std::ostream& out, std::span<const dns::Resolution> resolutions) {
  out << kHeader << '\n';
  for (const dns::Resolution& r : resolutions) {
    out << r.ts << '\t' << r.client.ToString() << '\t' << r.qname << '\t'
        << r.answer.ToString() << '\t' << r.ttl << '\n';
  }
}

std::optional<std::vector<dns::Resolution>> ReadDnsLog(std::string_view text) {
  const auto lines = util::Split(text, '\n');
  if (lines.empty() || util::Trim(lines[0]) != kHeader) return std::nullopt;
  std::vector<dns::Resolution> out;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = util::Trim(lines[i]);
    if (line.empty()) continue;
    const auto fields = util::Split(line, '\t');
    if (fields.size() != 5) return std::nullopt;
    dns::Resolution r;
    const auto mac = net::MacAddress::Parse(fields[1]);
    const auto ip = net::Ipv4Address::Parse(fields[3]);
    if (!ParseNum(fields[0], r.ts) || !mac || fields[2].empty() || !ip ||
        !ParseNum(fields[4], r.ttl)) {
      return std::nullopt;
    }
    r.client = *mac;
    r.qname = std::string(fields[2]);
    r.answer = *ip;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace lockdown::logs
