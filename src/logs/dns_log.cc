#include "logs/dns_log.h"

#include <charconv>
#include <ostream>

#include "util/strings.h"

namespace lockdown::logs {

namespace {
constexpr std::string_view kHeader = "ts\tclient\tqname\tanswer\tttl";

template <typename T>
bool ParseNum(std::string_view s, T& out) {
  const auto* end = s.data() + s.size();
  const auto res = std::from_chars(s.data(), end, out);
  return res.ec == std::errc() && res.ptr == end;
}

std::optional<ingest::ErrorClass> ParseRow(std::string_view raw, dns::Resolution& r) {
  const std::string_view line = util::Trim(raw);
  const auto fields = util::Split(line, '\t');
  if (fields.size() != 5) return ingest::ErrorClass::kFieldCount;
  if (!ParseNum(fields[0], r.ts)) return ingest::ErrorClass::kBadTimestamp;
  const auto mac = net::MacAddress::Parse(fields[1]);
  if (!mac) return ingest::ErrorClass::kBadMac;
  if (fields[2].empty()) return ingest::ErrorClass::kBadValue;
  const auto ip = net::Ipv4Address::Parse(fields[3]);
  if (!ip) return ingest::ErrorClass::kBadIp;
  if (!ParseNum(fields[4], r.ttl)) return ingest::ErrorClass::kBadNumber;
  r.client = *mac;
  r.qname = std::string(fields[2]);
  r.answer = *ip;
  return std::nullopt;
}
}  // namespace

void WriteDnsLog(std::ostream& out, std::span<const dns::Resolution> resolutions) {
  out << kHeader << '\n';
  for (const dns::Resolution& r : resolutions) {
    out << r.ts << '\t' << r.client.ToString() << '\t' << r.qname << '\t'
        << r.answer.ToString() << '\t' << r.ttl << '\n';
  }
}

std::optional<std::vector<dns::Resolution>> ReadDnsLog(
    std::string_view text, const ingest::IngestOptions& options,
    ingest::IngestReport& report) {
  return ingest::ParseLog<dns::Resolution>(text, kHeader, options, report, ParseRow);
}

std::optional<std::vector<dns::Resolution>> ReadDnsLog(std::string_view text) {
  ingest::IngestReport report;
  return ReadDnsLog(text, ingest::IngestOptions{}, report);
}

}  // namespace lockdown::logs
