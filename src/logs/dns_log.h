// On-disk DNS resolution log (TSV with header).
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "dns/record.h"
#include "ingest/ingest.h"

namespace lockdown::logs {

/// Writes resolutions as "ts\tclient\tqname\tanswer\tttl" rows.
void WriteDnsLog(std::ostream& out, std::span<const dns::Resolution> resolutions);

/// Parses a document produced by WriteDnsLog; nullopt on malformed input
/// (strict-mode read).
[[nodiscard]] std::optional<std::vector<dns::Resolution>> ReadDnsLog(
    std::string_view text);

/// Fault-tolerant read with line-granular recovery (see ingest/ingest.h).
[[nodiscard]] std::optional<std::vector<dns::Resolution>> ReadDnsLog(
    std::string_view text, const ingest::IngestOptions& options,
    ingest::IngestReport& report);

}  // namespace lockdown::logs
