// On-disk DNS resolution log (TSV with header).
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "dns/record.h"

namespace lockdown::logs {

/// Writes resolutions as "ts\tclient\tqname\tanswer\tttl" rows.
void WriteDnsLog(std::ostream& out, std::span<const dns::Resolution> resolutions);

/// Parses a document produced by WriteDnsLog; nullopt on malformed input.
[[nodiscard]] std::optional<std::vector<dns::Resolution>> ReadDnsLog(
    std::string_view text);

}  // namespace lockdown::logs
