// On-disk User-Agent sighting log (TSV with header). UA strings may contain
// anything except tab/newline, which the writer rejects by substitution.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ingest/ingest.h"
#include "net/ipv4.h"
#include "util/time.h"

namespace lockdown::logs {

/// A cleartext UA observation, owned-string form (the offline counterpart of
/// sim::UaSighting).
struct UaRecord {
  util::Timestamp ts = 0;
  net::Ipv4Address client_ip;
  std::string user_agent;
};

/// Writes sightings as "ts\tclient\tuser_agent" rows.
void WriteUaLog(std::ostream& out, const std::vector<UaRecord>& records);

/// Parses a document produced by WriteUaLog; nullopt on malformed input
/// (strict-mode read).
[[nodiscard]] std::optional<std::vector<UaRecord>> ReadUaLog(std::string_view text);

/// Fault-tolerant read with line-granular recovery (see ingest/ingest.h).
[[nodiscard]] std::optional<std::vector<UaRecord>> ReadUaLog(
    std::string_view text, const ingest::IngestOptions& options,
    ingest::IngestReport& report);

}  // namespace lockdown::logs
