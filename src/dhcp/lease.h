// DHCP lease records, the schema of the campus DHCP logs.
#pragma once

#include <compare>

#include "net/ipv4.h"
#include "net/mac.h"
#include "util/time.h"

namespace lockdown::dhcp {

/// One lease binding: `mac` held `ip` during [start, end).
struct Lease {
  net::MacAddress mac;
  net::Ipv4Address ip;
  util::Timestamp start = 0;
  util::Timestamp end = 0;

  friend constexpr auto operator<=>(const Lease&, const Lease&) noexcept = default;
};

}  // namespace lockdown::dhcp
