#include "dhcp/normalizer.h"

#include <algorithm>

namespace lockdown::dhcp {

IpToMacNormalizer::IpToMacNormalizer(std::span<const Lease> log) {
  for (const Lease& lease : log) {
    index_[lease.ip.value()].push_back(
        Interval{lease.start, lease.end, lease.mac});
  }
  for (auto& [ip, intervals] : index_) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) { return a.start < b.start; });
  }
}

std::optional<net::MacAddress> IpToMacNormalizer::Lookup(
    net::Ipv4Address ip, util::Timestamp ts) const noexcept {
  const auto it = index_.find(ip.value());
  if (it == index_.end()) return std::nullopt;
  const std::vector<Interval>& intervals = it->second;
  // Last interval with start <= ts.
  auto pos = std::upper_bound(
      intervals.begin(), intervals.end(), ts,
      [](util::Timestamp t, const Interval& iv) { return t < iv.start; });
  if (pos == intervals.begin()) return std::nullopt;
  --pos;
  if (ts < pos->end) return pos->mac;
  return std::nullopt;
}

std::optional<net::MacAddress> IpToMacNormalizer::LookupLinear(
    std::span<const Lease> log, net::Ipv4Address ip, util::Timestamp ts) noexcept {
  std::optional<net::MacAddress> best;
  util::Timestamp best_start = 0;
  for (const Lease& lease : log) {
    if (lease.ip == ip && lease.start <= ts && ts < lease.end &&
        (!best || lease.start >= best_start)) {
      best = lease.mac;
      best_start = lease.start;
    }
  }
  return best;
}

}  // namespace lockdown::dhcp
