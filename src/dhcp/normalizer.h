// IP -> MAC normalization.
//
// "Devices in the network are assigned dynamic, temporary IP addresses by
//  DHCP, which we normalize using contemporaneous DHCP logs to convert these
//  dynamic IP addresses to per-device MAC addresses." (paper, §3)
//
// The normalizer builds an interval index over the DHCP log: per client IP, a
// time-sorted vector of lease intervals, looked up with binary search. This
// makes each lookup O(log k) in the number of leases the address went
// through, versus a full log scan; the perf_components bench quantifies the
// gap.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dhcp/lease.h"

namespace lockdown::dhcp {

/// Immutable interval index from (client IP, time) to the MAC that held the
/// address at that time.
class IpToMacNormalizer {
 public:
  /// Builds the index from a DHCP log. Intervals for the same IP must not
  /// overlap (the DHCP server guarantees this); ties are resolved in favour
  /// of the later lease.
  explicit IpToMacNormalizer(std::span<const Lease> log);

  /// MAC holding `ip` at time `ts`, or nullopt if no lease covers the instant.
  [[nodiscard]] std::optional<net::MacAddress> Lookup(net::Ipv4Address ip,
                                                      util::Timestamp ts) const noexcept;

  /// Reference implementation: linear scan over the whole log. Used by tests
  /// to validate the index and by perf_components as the naive baseline.
  [[nodiscard]] static std::optional<net::MacAddress> LookupLinear(
      std::span<const Lease> log, net::Ipv4Address ip, util::Timestamp ts) noexcept;

  /// Number of distinct client IPs indexed.
  [[nodiscard]] std::size_t num_ips() const noexcept { return index_.size(); }

 private:
  struct Interval {
    util::Timestamp start;
    util::Timestamp end;
    net::MacAddress mac;
  };
  std::unordered_map<std::uint32_t, std::vector<Interval>> index_;
};

}  // namespace lockdown::dhcp
