#include "dhcp/server.h"

#include <stdexcept>

namespace lockdown::dhcp {

Server::Server(std::vector<net::Cidr> pools, ServerConfig config, util::Pcg32 rng)
    : config_(config), rng_(rng) {
  if (pools.empty()) throw std::invalid_argument("Server: no pools");
  pools_.reserve(pools.size());
  for (net::Cidr c : pools) pools_.emplace_back(c);
}

net::Ipv4Address Server::AllocateAddress() {
  // Prefer recycled addresses so that IP reuse across devices — the case the
  // IP->MAC normalizer exists to disambiguate — actually occurs in the logs.
  if (!free_list_.empty()) {
    const net::Ipv4Address ip = free_list_.back();
    free_list_.pop_back();
    return ip;
  }
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    auto& pool = pools_[next_pool_ % pools_.size()];
    ++next_pool_;
    if (pool.Remaining() > 0) return pool.Allocate();
  }
  throw std::length_error("DHCP pools exhausted");
}

net::Ipv4Address Server::Acquire(net::MacAddress mac, util::Timestamp now) {
  auto [it, inserted] = active_.try_emplace(mac.value());
  ClientState& st = it->second;
  if (inserted) {
    st.ip = AllocateAddress();
    st.lease_end = now + config_.lease_lifetime;
    st.log_index = log_.size();
    log_.push_back(Lease{mac, st.ip, now, st.lease_end});
    return st.ip;
  }
  if (now < st.lease_end) {
    // Live lease: renewing extends it in place.
    st.lease_end = now + config_.lease_lifetime;
    log_[st.log_index].end = st.lease_end;
    return st.ip;
  }
  // Lease expired. Most clients get the same address back; some re-bind.
  if (rng_.Bernoulli(config_.renew_same_ip_prob)) {
    st.lease_end = now + config_.lease_lifetime;
    st.log_index = log_.size();
    log_.push_back(Lease{mac, st.ip, now, st.lease_end});
    return st.ip;
  }
  // Allocate the replacement before recycling the old address, otherwise the
  // free list would hand the device its own address straight back.
  const net::Ipv4Address old_ip = st.ip;
  st.ip = AllocateAddress();
  free_list_.push_back(old_ip);
  st.lease_end = now + config_.lease_lifetime;
  st.log_index = log_.size();
  log_.push_back(Lease{mac, st.ip, now, st.lease_end});
  return st.ip;
}

}  // namespace lockdown::dhcp
