// Simulation of the campus DHCP service.
//
// Devices in the study network have *dynamic* addresses: the paper's pipeline
// must join the traffic tap against contemporaneous DHCP logs to recover a
// stable per-device identity (the MAC). We therefore simulate a real lease
// lifecycle — pools, finite lease lifetimes, renewals that usually keep the
// same address, and occasional re-binding to a fresh address — so that the
// IP→MAC normalization the paper performs is a genuine temporal join.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dhcp/lease.h"
#include "net/allocator.h"
#include "util/rng.h"

namespace lockdown::dhcp {

/// Lease-lifecycle parameters.
struct ServerConfig {
  util::Timestamp lease_lifetime = 6 * util::kSecondsPerHour;
  /// Probability that a renewal keeps the previous address (a real client
  /// renewing before expiry always does; this folds in devices that sleep
  /// past expiry and re-bind).
  double renew_same_ip_prob = 0.9;
};

/// Simulated DHCP server over one or more address pools. `Acquire` is called
/// by the traffic generator whenever a device becomes active; the server
/// extends or re-issues leases and appends every binding to the log.
class Server {
 public:
  Server(std::vector<net::Cidr> pools, ServerConfig config, util::Pcg32 rng);

  /// Ensures `mac` holds a lease at time `now`, renewing or re-binding as
  /// needed, and returns the device's current address.
  net::Ipv4Address Acquire(net::MacAddress mac, util::Timestamp now);

  /// All lease bindings issued so far (the DHCP log). Bindings are closed
  /// intervals over time; a renewal that kept the address extends the last
  /// log entry rather than appending a new one.
  [[nodiscard]] const std::vector<Lease>& log() const noexcept { return log_; }

  /// Number of distinct MACs ever served.
  [[nodiscard]] std::size_t num_clients() const noexcept { return active_.size(); }

 private:
  struct ClientState {
    net::Ipv4Address ip;
    util::Timestamp lease_end = 0;
    std::size_t log_index = 0;  // entry in log_ for the current binding
  };

  net::Ipv4Address AllocateAddress();

  std::vector<net::BlockAllocator> pools_;
  std::vector<net::Ipv4Address> free_list_;
  std::size_t next_pool_ = 0;
  ServerConfig config_;
  util::Pcg32 rng_;
  std::unordered_map<std::uint64_t, ClientState> active_;  // keyed by MAC value
  std::vector<Lease> log_;
};

}  // namespace lockdown::dhcp
