// Deterministic syscall-level fault injection and crash points for the
// io::File shim (DESIGN.md §12).
//
// A FaultPlan is a Pcg32 seed plus an ordered clause list. Each clause
// matches one operation kind (or every kind) and fires either at the Nth
// attempt of that kind (`#N`, 1-based, counted process-wide per kind — every
// attempted syscall counts, so a retried operation is a fresh index) or with
// a fixed probability per attempt (`%P`, drawn from a per-kind Pcg32 stream
// so unrelated operations cannot shift each other's draws). The same seed
// and spec therefore reproduce the same faults at the same operations every
// run: the syscall analogue of util::FaultInjector's byte-level faults.
//
// Spec grammar (env var LOCKDOWN_IO_FAULT or ParseFaultPlan):
//
//   <seed>:<clause>[,<clause>...]
//   clause := <kind>@<op>[#N|%P]
//   kind   := enospc | eio | eintr | eagain | short
//   op     := open | read | write | fsync | rename | truncate | close | all
//
//   LOCKDOWN_IO_FAULT=7:enospc@write#12       the 12th write fails ENOSPC
//   LOCKDOWN_IO_FAULT=7:eintr@read%0.5        each read fails EINTR w.p. 0.5
//   LOCKDOWN_IO_FAULT=7:short@write%0.25,eio@fsync#1
//
// `short` (read/write only) truncates the attempt to roughly half its byte
// count instead of failing it — the shim's completion loops must finish the
// transfer anyway. A clause with neither `#N` nor `%P` fires on every
// attempt of its kind.
//
// Crash points are named process-exit sites: io::CrashPoint("name") is a
// no-op until that exact name is armed (ArmCrashPoint, LOCKDOWN_IO_CRASH_AT,
// or the CLI's --io-crash-at), then calls _exit(125) — simulating SIGKILL at
// precisely that instruction for the crash harness. Names must be registered
// in io/crash_points.h.
//
// Both features are inert behind one relaxed atomic load each when unused,
// so the shim adds no measurable cost to clean runs (the PR 7 obs
// discipline).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lockdown::io {

/// The operation kinds the injector can distinguish. kWrite covers both
/// write and pwrite; kOpen covers file and directory opens.
enum class Op : std::uint8_t {
  kOpen = 0,
  kRead,
  kWrite,
  kFsync,
  kRename,
  kTruncate,
  kClose,
};
inline constexpr int kNumOps = 7;
[[nodiscard]] const char* ToString(Op op) noexcept;

enum class FaultKind : std::uint8_t {
  kEnospc = 0,  ///< permanent: no space left on device
  kEio,         ///< disk error; transient only within RetryPolicy::eio_budget
  kEintr,       ///< transient: interrupted by signal
  kEagain,      ///< transient: resource temporarily unavailable
  kShort,       ///< short read/write: the attempt moves ~half its bytes
};
[[nodiscard]] const char* ToString(FaultKind kind) noexcept;

struct FaultClause {
  FaultKind kind = FaultKind::kEio;
  Op op = Op::kOpen;
  bool all_ops = false;        ///< clause matches every operation kind
  std::uint64_t at_index = 0;  ///< fire at the Nth attempt (1-based); 0 = unset
  double probability = 0.0;    ///< fire per attempt w.p. p in (0,1]; 0 = unset
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultClause> clauses;  ///< first firing clause wins
};

/// Parses the `<seed>:<clause>[,...]` grammar above. On failure returns
/// nullopt and, when `error` is non-null, a one-line description of the
/// offending token.
[[nodiscard]] std::optional<FaultPlan> ParseFaultPlan(std::string_view spec,
                                                      std::string* error = nullptr);

/// Installs `plan` process-wide: resets every per-kind attempt counter,
/// reseeds the per-kind Pcg32 streams, and enables injection iff the plan
/// has clauses. Thread-safe.
void SetFaultPlan(const FaultPlan& plan);

/// Disables injection and clears the plan (counters included).
void ClearFaultPlan();

namespace internal {
extern std::atomic<bool> g_faults_enabled;
extern std::atomic<bool> g_crash_armed;
}  // namespace internal

/// The shim's fast-path gate: one relaxed atomic load, false unless a
/// non-empty FaultPlan is installed.
[[nodiscard]] inline bool FaultInjectionEnabled() noexcept {
  return internal::g_faults_enabled.load(std::memory_order_relaxed);
}

/// What the injector decided for one attempted operation.
struct Injected {
  int err = 0;            ///< errno to simulate; 0 = none
  bool short_io = false;  ///< truncate this read/write attempt instead
};

/// Consults the installed plan for the next attempt of `op`, advancing the
/// per-kind counter. Returns nullopt when no clause fires (or injection is
/// off). Called by the io::File internals; exposed for the injector's own
/// tests.
[[nodiscard]] std::optional<Injected> NextFault(Op op);

// --- Crash points ------------------------------------------------------------

/// The exit status of a process killed at a crash point. 125 stays clear of
/// the CLI's documented 0-4 range and of shell/POSIX 126/127/128+n.
inline constexpr int kCrashExitCode = 125;

/// Arms `name`; the next CrashPoint(name) call exits the process. Returns
/// false (and arms nothing) when the name is not in io/crash_points.h.
[[nodiscard]] bool ArmCrashPoint(std::string_view name);

/// Disarms any armed crash point.
void DisarmCrashPoints();

/// True when `name` is currently armed.
[[nodiscard]] bool CrashPointArmed(std::string_view name);

/// Terminates via _exit(kCrashExitCode) when `name` is armed; otherwise a
/// relaxed atomic load and out.
void CrashPoint(std::string_view name) noexcept;

/// Reads LOCKDOWN_IO_FAULT (fault plan spec) and LOCKDOWN_IO_CRASH_AT
/// (crash-point name). Returns "" on success, else a one-line error message
/// naming the bad variable — the CLI maps it to its usage exit code.
[[nodiscard]] std::string ConfigureFromEnv();

}  // namespace lockdown::io
