// io::File — the sanctioned file-IO surface for src/store and src/ingest
// (DESIGN.md §12; lockdown_lint rule LD008 bans raw syscalls and iostreams
// there).
//
// Every operation routes through one code path that (a) consults the
// deterministic IoFaultInjector (io/fault.h) before touching the kernel,
// (b) absorbs transient failures — EINTR/EAGAIN always, EIO up to the
// policy's budget — with bounded exponential backoff, and (c) surfaces
// permanent failures as io::IoError carrying the path, operation and errno
// (the PR 3 taxonomy; the CLI maps it to exit 2). Short reads and writes,
// injected or real, are completed by the loops in ReadAll/WriteAll/
// PWriteAll, so callers only ever see full transfers or an exception.
//
// When no fault plan is installed the shim's only additions over the raw
// syscalls are one relaxed atomic load per operation and the (empty) retry
// loop frame — measured free at bench scale, mirroring the obs discipline.
//
//   io::File f = io::File::Create(tmp);
//   f.PWriteAll(bytes, offset);
//   f.Fsync();
//   f.Close();                       // checked: close errors are real errors
//   io::Rename(tmp, target);
//   io::FsyncDir(target.parent_path());
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

#include "io/fault.h"

namespace lockdown::io {

/// A failed file operation: path, operation name and errno, formatted
/// "path: op: strerror". Permanent by the time it reaches a caller — the
/// retry policy has already absorbed what it could.
class IoError : public std::runtime_error {
 public:
  IoError(std::filesystem::path path, std::string op, int err);

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] const std::string& op() const noexcept { return op_; }
  [[nodiscard]] int error_code() const noexcept { return err_; }

 private:
  std::filesystem::path path_;
  std::string op_;
  int err_;
};

/// Bounded exponential backoff for transient faults. Deterministic: the
/// backoff for retry k is initial_backoff_us * 2^(k-1), capped at
/// max_backoff_us — no jitter, so tests can assert the exact schedule.
struct RetryPolicy {
  int max_attempts = 6;                    ///< total tries per operation
  std::uint64_t initial_backoff_us = 100;  ///< before the first retry
  std::uint64_t max_backoff_us = 50'000;   ///< backoff ceiling
  /// EIO absorptions allowed per operation; 0 (default) treats EIO as
  /// permanent. A small budget models a disk that recovers on re-read.
  int eio_budget = 0;

  /// Backoff before retry number `retry` (1-based). Overflow-safe.
  [[nodiscard]] std::uint64_t BackoffUs(int retry) const noexcept;

  /// EINTR/EAGAIN (and EWOULDBLOCK): transient regardless of budget.
  [[nodiscard]] static bool AlwaysTransient(int err) noexcept;
};

/// The process-wide policy the shim applies. Thread-safe; reads happen only
/// on a failed attempt, so swapping policies costs clean runs nothing.
[[nodiscard]] RetryPolicy GetRetryPolicy();
void SetRetryPolicy(const RetryPolicy& policy);

/// Replaces the real backoff sleep (tests get a virtual clock: capture the
/// requested durations instead of waiting them out). nullptr restores the
/// real sleep.
using SleepFn = void (*)(std::uint64_t micros);
void SetSleepFnForTest(SleepFn fn) noexcept;

/// Move-only owned file descriptor. All methods throw IoError on permanent
/// failure; the destructor closes best-effort (use Close() when close errors
/// matter — after writes, they do).
class File {
 public:
  File() noexcept = default;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  /// O_WRONLY|O_CREAT|O_TRUNC, mode 0644.
  [[nodiscard]] static File Create(const std::filesystem::path& path);
  /// O_RDONLY.
  [[nodiscard]] static File OpenRead(const std::filesystem::path& path);

  /// Writes all of `data` at `offset` (pwrite loop; completes short writes).
  void PWriteAll(std::span<const std::byte> data, std::uint64_t offset);
  /// Appends all of `data` at the current position (write loop).
  void WriteAll(std::string_view data);
  /// One read at the current position; returns bytes read, 0 at EOF.
  [[nodiscard]] std::size_t ReadSome(std::span<std::byte> out);
  /// Reads from the current position to EOF.
  [[nodiscard]] std::string ReadAll();

  [[nodiscard]] std::uint64_t Size();
  void Truncate(std::uint64_t size);
  /// fsync, timed into the io/fsync_us histogram when metrics are on.
  void Fsync();
  /// Checked close; idempotent once closed. The fd is gone either way.
  void Close();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  File(int fd, std::filesystem::path path) noexcept
      : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::filesystem::path path_;
};

/// rename(2) through the shim (Op::kRename). Throws IoError naming `to`.
void Rename(const std::filesystem::path& from, const std::filesystem::path& to);

/// Opens `dir` and fsyncs it — the step that makes a rename durable.
/// Filesystems that cannot sync directories return EINVAL (or ENOTSUP);
/// that, and only that, is swallowed (the documented carve-out). Every
/// other failure — including the directory open — throws.
void FsyncDir(const std::filesystem::path& dir);

/// unlink best-effort, for destructors and sweepers: no injection, no
/// exceptions. Returns true when the file was removed.
bool TryRemove(const std::filesystem::path& path) noexcept;

/// Open + read-to-EOF + checked close.
[[nodiscard]] std::string ReadFileToString(const std::filesystem::path& path);

/// A std::streambuf over io::File for code that formats into a std::ostream
/// (the log exporters): bounded buffer, flushed through File::WriteAll so
/// injection/retry cover it. Construct the ostream with
/// exceptions(std::ios::badbit) to propagate IoError out of operator<<.
/// flush() the stream, then Close() the file — the destructor drops
/// unflushed bytes by design (an exception mid-write must not write more).
class FileStreamBuf final : public std::streambuf {
 public:
  explicit FileStreamBuf(File file, std::size_t buffer_bytes = 1 << 16);

  [[nodiscard]] File& file() noexcept { return file_; }

 protected:
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  void FlushBuffer();

  File file_;
  std::vector<char> buf_;
};

}  // namespace lockdown::io
