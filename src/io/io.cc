#include "io/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "util/mutex.h"
#include "util/strings.h"

namespace lockdown::io {

namespace {

struct PolicyState {
  util::Mutex mu;
  RetryPolicy policy GUARDED_BY(mu);
};

PolicyState& PolicyHolder() {
  static PolicyState* s = new PolicyState;  // never destroyed (exit-safe)
  return *s;
}

std::atomic<SleepFn> g_sleep{nullptr};

void SleepUs(std::uint64_t micros) {
  if (micros == 0) return;
  if (const SleepFn fn = g_sleep.load(std::memory_order_relaxed)) {
    fn(micros);
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

void CountRetry() {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& retries = obs::GetCounter("io/retries", "retries");
  retries.Increment();
}

/// One shim operation: consult the injector, run a single raw attempt,
/// absorb transient failures per the retry policy, throw IoError on
/// permanent ones. `raw` receives the injected short-IO flag (only
/// read/write attempts honor it) and returns the syscall result with errno
/// set on -1. The clean fast path is one relaxed atomic load plus the
/// syscall.
template <typename Fn>
long long Run(Op op, const std::filesystem::path& path, const char* opname,
              Fn&& raw) {
  RetryPolicy policy;      // fetched on the first failure only
  bool have_policy = false;
  int eio_left = 0;
  for (int attempt = 1;; ++attempt) {
    int injected_err = 0;
    bool short_io = false;
    if (FaultInjectionEnabled()) {
      if (const auto fault = NextFault(op)) {
        injected_err = fault->err;
        short_io = fault->short_io;
      }
    }
    long long r;
    if (injected_err != 0) {
      r = -1;
      errno = injected_err;
    } else {
      r = raw(short_io);
    }
    if (r >= 0) return r;
    const int err = errno;
    if (!have_policy) {
      policy = GetRetryPolicy();
      eio_left = policy.eio_budget;
      have_policy = true;
    }
    bool transient = RetryPolicy::AlwaysTransient(err);
    if (!transient && err == EIO && eio_left > 0) {
      --eio_left;
      transient = true;
    }
    if (!transient || attempt >= policy.max_attempts) {
      throw IoError(path, opname, err);
    }
    CountRetry();
    SleepUs(policy.BackoffUs(attempt));
  }
}

}  // namespace

IoError::IoError(std::filesystem::path path, std::string op, int err)
    : std::runtime_error(path.string() + ": " + op + ": " +
                         util::ErrnoString(err)),
      path_(std::move(path)),
      op_(std::move(op)),
      err_(err) {}

std::uint64_t RetryPolicy::BackoffUs(int retry) const noexcept {
  std::uint64_t us = initial_backoff_us;
  for (int i = 1; i < retry && us < max_backoff_us; ++i) us *= 2;
  return us < max_backoff_us ? us : max_backoff_us;
}

bool RetryPolicy::AlwaysTransient(int err) noexcept {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK;
}

RetryPolicy GetRetryPolicy() {
  PolicyState& s = PolicyHolder();
  util::MutexLock lock(s.mu);
  return s.policy;
}

void SetRetryPolicy(const RetryPolicy& policy) {
  PolicyState& s = PolicyHolder();
  util::MutexLock lock(s.mu);
  s.policy = policy;
}

void SetSleepFnForTest(SleepFn fn) noexcept {
  g_sleep.store(fn, std::memory_order_relaxed);
}

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);  // best-effort; Close() is the checked path
}

File File::Create(const std::filesystem::path& path) {
  const int fd = static_cast<int>(Run(Op::kOpen, path, "open", [&](bool) {
    return static_cast<long long>(
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  }));
  return File(fd, path);
}

File File::OpenRead(const std::filesystem::path& path) {
  const int fd = static_cast<int>(Run(Op::kOpen, path, "open", [&](bool) {
    return static_cast<long long>(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  }));
  return File(fd, path);
}

void File::PWriteAll(std::span<const std::byte> data, std::uint64_t offset) {
  const std::byte* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const long long n = Run(Op::kWrite, path_, "pwrite", [&](bool short_io) {
      std::size_t count = left;
      if (short_io && count > 1) count = (count + 1) / 2;
      return static_cast<long long>(
          ::pwrite(fd_, p, count, static_cast<off_t>(offset)));
    });
    p += n;
    offset += static_cast<std::uint64_t>(n);
    left -= static_cast<std::size_t>(n);
  }
}

void File::WriteAll(std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const long long n = Run(Op::kWrite, path_, "write", [&](bool short_io) {
      std::size_t count = left;
      if (short_io && count > 1) count = (count + 1) / 2;
      return static_cast<long long>(::write(fd_, p, count));
    });
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::size_t File::ReadSome(std::span<std::byte> out) {
  if (out.empty()) return 0;
  const long long n = Run(Op::kRead, path_, "read", [&](bool short_io) {
    std::size_t count = out.size();
    if (short_io && count > 1) count = (count + 1) / 2;
    return static_cast<long long>(::read(fd_, out.data(), count));
  });
  return static_cast<std::size_t>(n);
}

std::string File::ReadAll() {
  std::string out;
  std::array<std::byte, 1 << 16> buf;
  for (;;) {
    const std::size_t n = ReadSome(std::span<std::byte>(buf));
    if (n == 0) break;
    out.append(reinterpret_cast<const char*>(buf.data()), n);
  }
  return out;
}

std::uint64_t File::Size() {
  struct stat st {};
  if (::fstat(fd_, &st) != 0) throw IoError(path_, "fstat", errno);
  return static_cast<std::uint64_t>(st.st_size);
}

void File::Truncate(std::uint64_t size) {
  Run(Op::kTruncate, path_, "ftruncate", [&](bool) {
    return static_cast<long long>(::ftruncate(fd_, static_cast<off_t>(size)));
  });
}

void File::Fsync() {
  if (!obs::MetricsEnabled()) {
    Run(Op::kFsync, path_, "fsync",
        [&](bool) { return static_cast<long long>(::fsync(fd_)); });
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  Run(Op::kFsync, path_, "fsync",
      [&](bool) { return static_cast<long long>(::fsync(fd_)); });
  static obs::Histogram& fsync_us =
      obs::GetHistogram("io/fsync_us", obs::Buckets::kDurationUs, "us");
  fsync_us.Observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
}

void File::Close() {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);  // gone either way (POSIX close)
  int injected = 0;
  if (FaultInjectionEnabled()) {
    if (const auto fault = NextFault(Op::kClose); fault && fault->err != 0) {
      injected = fault->err;
    }
  }
  if (injected != 0) {
    ::close(fd);  // don't leak the descriptor while simulating the failure
    throw IoError(path_, "close", injected);
  }
  // close is deliberately not retried: after EINTR the descriptor state is
  // unspecified and a retry could close a recycled fd.
  if (::close(fd) != 0) throw IoError(path_, "close", errno);
}

void Rename(const std::filesystem::path& from,
            const std::filesystem::path& to) {
  Run(Op::kRename, to, "rename", [&](bool) {
    return static_cast<long long>(::rename(from.c_str(), to.c_str()));
  });
}

void FsyncDir(const std::filesystem::path& dir) {
  const int fd = static_cast<int>(Run(Op::kOpen, dir, "open", [&](bool) {
    return static_cast<long long>(
        ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  }));
  try {
    Run(Op::kFsync, dir, "fsync",
        [&](bool) { return static_cast<long long>(::fsync(fd)); });
  } catch (const IoError& e) {
    // The documented carve-out: some filesystems cannot sync a directory
    // and say so with EINVAL/ENOTSUP — the rename is as durable as it gets
    // there. Anything else is a real failure.
    if (e.error_code() != EINVAL && e.error_code() != ENOTSUP) {
      ::close(fd);
      throw;
    }
  }
  ::close(fd);  // best-effort: a directory fd holds no dirty data
}

bool TryRemove(const std::filesystem::path& path) noexcept {
  return ::unlink(path.c_str()) == 0;
}

std::string ReadFileToString(const std::filesystem::path& path) {
  File f = File::OpenRead(path);
  std::string data = f.ReadAll();
  f.Close();
  return data;
}

FileStreamBuf::FileStreamBuf(File file, std::size_t buffer_bytes)
    : file_(std::move(file)), buf_(buffer_bytes > 0 ? buffer_bytes : 1) {
  setp(buf_.data(), buf_.data() + buf_.size());
}

FileStreamBuf::int_type FileStreamBuf::overflow(int_type ch) {
  FlushBuffer();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FileStreamBuf::sync() {
  FlushBuffer();
  return 0;
}

void FileStreamBuf::FlushBuffer() {
  const char* base = pbase();
  const std::size_t n = static_cast<std::size_t>(pptr() - base);
  // Reset before writing so an exception cannot re-send the same bytes on a
  // later flush; the data itself stays valid in buf_ for this call.
  setp(buf_.data(), buf_.data() + buf_.size());
  if (n > 0) file_.WriteAll(std::string_view(base, n));
}

}  // namespace lockdown::io
