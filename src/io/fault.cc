#include "io/fault.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>

#include "io/crash_points.h"
#include "obs/obs.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace lockdown::io {

namespace {

/// One Pcg32 stream per operation kind, all forked off the plan seed, so a
/// probability clause on reads draws the same sequence no matter how many
/// writes interleave.
constexpr std::uint64_t kStreamBase = 0x10FA;  // arbitrary, fixed forever

struct InjectorState {
  util::Mutex mu;
  FaultPlan plan GUARDED_BY(mu);
  std::uint64_t attempts[kNumOps] GUARDED_BY(mu) = {};
  std::vector<util::Pcg32> rngs GUARDED_BY(mu);
  std::string armed_point GUARDED_BY(mu);
};

InjectorState& State() {
  static InjectorState* s = new InjectorState;  // never destroyed: see obs
  return *s;
}

void CountInjected(Op op, FaultKind kind) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& total = obs::GetCounter("io/faults_injected", "faults");
  total.Increment();
  obs::GetCounter(std::string("io/faults_injected_") + ToString(op) + "_" +
                      ToString(kind),
                  "faults")
      .Increment();
}

std::optional<FaultKind> ParseKind(std::string_view s) noexcept {
  if (s == "enospc") return FaultKind::kEnospc;
  if (s == "eio") return FaultKind::kEio;
  if (s == "eintr") return FaultKind::kEintr;
  if (s == "eagain") return FaultKind::kEagain;
  if (s == "short") return FaultKind::kShort;
  return std::nullopt;
}

std::optional<Op> ParseOp(std::string_view s) noexcept {
  for (int i = 0; i < kNumOps; ++i) {
    if (s == ToString(static_cast<Op>(i))) return static_cast<Op>(i);
  }
  return std::nullopt;
}

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool ParseClause(std::string_view text, FaultClause& clause,
                 std::string* error) {
  const std::size_t at = text.find('@');
  if (at == std::string_view::npos) {
    return Fail(error, "clause '" + std::string(text) +
                           "' is missing '@' (want <kind>@<op>[#N|%P])");
  }
  const auto kind = ParseKind(text.substr(0, at));
  if (!kind) {
    return Fail(error, "unknown fault kind '" + std::string(text.substr(0, at)) +
                           "' (want enospc|eio|eintr|eagain|short)");
  }
  clause.kind = *kind;
  std::string_view rest = text.substr(at + 1);
  const std::size_t mark = rest.find_first_of("#%");
  std::string_view op_token = rest.substr(0, mark);
  if (op_token == "all") {
    clause.all_ops = true;
  } else {
    const auto op = ParseOp(op_token);
    if (!op) {
      return Fail(error, "unknown operation '" + std::string(op_token) +
                             "' (want open|read|write|fsync|rename|truncate|"
                             "close|all)");
    }
    clause.op = *op;
  }
  if (clause.kind == FaultKind::kShort && !clause.all_ops &&
      clause.op != Op::kRead && clause.op != Op::kWrite) {
    return Fail(error, "short applies to read/write/all, not '" +
                           std::string(op_token) + "'");
  }
  if (mark == std::string_view::npos) return true;  // fire on every attempt
  const std::string_view value = rest.substr(mark + 1);
  if (rest[mark] == '#') {
    std::uint64_t n = 0;
    const auto [p, ec] =
        std::from_chars(value.data(), value.data() + value.size(), n);
    if (ec != std::errc() || p != value.data() + value.size() || n == 0) {
      return Fail(error, "bad operation index '#" + std::string(value) +
                             "' (want a positive integer)");
    }
    clause.at_index = n;
  } else {
    double p = 0.0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), p);
    if (ec != std::errc() || ptr != value.data() + value.size() || p <= 0.0 ||
        p > 1.0) {
      return Fail(error, "bad probability '%" + std::string(value) +
                             "' (want a value in (0,1])");
    }
    clause.probability = p;
  }
  return true;
}

}  // namespace

namespace internal {
std::atomic<bool> g_faults_enabled{false};
std::atomic<bool> g_crash_armed{false};
}  // namespace internal

const char* ToString(Op op) noexcept {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kFsync: return "fsync";
    case Op::kRename: return "rename";
    case Op::kTruncate: return "truncate";
    case Op::kClose: return "close";
  }
  return "unknown";
}

const char* ToString(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kEnospc: return "enospc";
    case FaultKind::kEio: return "eio";
    case FaultKind::kEintr: return "eintr";
    case FaultKind::kEagain: return "eagain";
    case FaultKind::kShort: return "short";
  }
  return "unknown";
}

std::optional<FaultPlan> ParseFaultPlan(std::string_view spec,
                                        std::string* error) {
  FaultPlan plan;
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) {
    Fail(error, "missing ':' (want <seed>:<kind>@<op>[#N|%P][,...])");
    return std::nullopt;
  }
  const std::string_view seed_token = spec.substr(0, colon);
  const auto [p, ec] = std::from_chars(
      seed_token.data(), seed_token.data() + seed_token.size(), plan.seed);
  if (ec != std::errc() || p != seed_token.data() + seed_token.size() ||
      seed_token.empty()) {
    Fail(error, "bad seed '" + std::string(seed_token) +
                    "' (want an unsigned integer)");
    return std::nullopt;
  }
  std::string_view rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view token = rest.substr(0, comma);
    FaultClause clause;
    if (!ParseClause(token, clause, error)) return std::nullopt;
    plan.clauses.push_back(clause);
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  if (plan.clauses.empty()) {
    Fail(error, "no clauses after the seed");
    return std::nullopt;
  }
  return plan;
}

void SetFaultPlan(const FaultPlan& plan) {
  InjectorState& s = State();
  util::MutexLock lock(s.mu);
  s.plan = plan;
  std::fill(std::begin(s.attempts), std::end(s.attempts), 0);
  s.rngs.clear();
  s.rngs.reserve(kNumOps);
  for (int i = 0; i < kNumOps; ++i) {
    s.rngs.emplace_back(plan.seed, kStreamBase + static_cast<std::uint64_t>(i));
  }
  internal::g_faults_enabled.store(!plan.clauses.empty(),
                                   std::memory_order_relaxed);
}

void ClearFaultPlan() { SetFaultPlan(FaultPlan{}); }

std::optional<Injected> NextFault(Op op) {
  if (!FaultInjectionEnabled()) return std::nullopt;
  InjectorState& s = State();
  util::MutexLock lock(s.mu);
  const int oi = static_cast<int>(op);
  const std::uint64_t n = ++s.attempts[oi];
  for (const FaultClause& c : s.plan.clauses) {
    if (!c.all_ops && c.op != op) continue;
    bool fire;
    if (c.at_index > 0) {
      fire = n == c.at_index;
    } else if (c.probability > 0.0) {
      fire = s.rngs[static_cast<std::size_t>(oi)].NextDouble() < c.probability;
    } else {
      fire = true;
    }
    if (!fire) continue;
    Injected inj;
    switch (c.kind) {
      case FaultKind::kEnospc: inj.err = ENOSPC; break;
      case FaultKind::kEio: inj.err = EIO; break;
      case FaultKind::kEintr: inj.err = EINTR; break;
      case FaultKind::kEagain: inj.err = EAGAIN; break;
      case FaultKind::kShort:
        // Short IO only makes sense where a byte count exists; an `all`
        // clause hitting open/fsync/... degrades to "no fault".
        if (op != Op::kRead && op != Op::kWrite) return std::nullopt;
        inj.short_io = true;
        break;
    }
    CountInjected(op, c.kind);
    return inj;
  }
  return std::nullopt;
}

bool ArmCrashPoint(std::string_view name) {
  if (std::find(kCrashPoints.begin(), kCrashPoints.end(), name) ==
      kCrashPoints.end()) {
    return false;
  }
  InjectorState& s = State();
  util::MutexLock lock(s.mu);
  s.armed_point.assign(name);
  internal::g_crash_armed.store(true, std::memory_order_relaxed);
  return true;
}

void DisarmCrashPoints() {
  InjectorState& s = State();
  util::MutexLock lock(s.mu);
  s.armed_point.clear();
  internal::g_crash_armed.store(false, std::memory_order_relaxed);
}

bool CrashPointArmed(std::string_view name) {
  if (!internal::g_crash_armed.load(std::memory_order_relaxed)) return false;
  InjectorState& s = State();
  util::MutexLock lock(s.mu);
  return s.armed_point == name;
}

void CrashPoint(std::string_view name) noexcept {
  if (!internal::g_crash_armed.load(std::memory_order_relaxed)) return;
  InjectorState& s = State();
  util::MutexLock lock(s.mu);
  if (s.armed_point == name) ::_exit(kCrashExitCode);
}

std::string ConfigureFromEnv() {
  if (const char* spec = std::getenv("LOCKDOWN_IO_FAULT")) {
    std::string error;
    const auto plan = ParseFaultPlan(spec, &error);
    if (!plan) return "LOCKDOWN_IO_FAULT: " + error;
    SetFaultPlan(*plan);
  }
  if (const char* point = std::getenv("LOCKDOWN_IO_CRASH_AT")) {
    if (!ArmCrashPoint(point)) {
      return std::string("LOCKDOWN_IO_CRASH_AT: unknown crash point '") +
             point + "' (see src/io/crash_points.h)";
    }
  }
  return "";
}

}  // namespace lockdown::io
