// The crash-point registry (DESIGN.md §12).
//
// Every io::CrashPoint(name) site in the tree must name an entry here; the
// crash harness (tests/store/crash_harness_test.cc) iterates this array and
// proves, for each point, that killing the process there leaves the snapshot
// target either old-valid or new-valid — never torn. ArmCrashPoint and the
// CLI's --io-crash-at validate against the same list, so a typo'd point name
// is a usage error instead of a silently-never-firing crash.
#pragma once

#include <array>
#include <string_view>

namespace lockdown::io {

/// Registered crash-point names, sorted. The prefix is the subsystem and
/// function that hosts the point; the suffix says where in the durability
/// ordering (write -> fsync(file) -> rename -> fsync(dir)) it sits.
inline constexpr std::array<std::string_view, 5> kCrashPoints = {
    "store.writer.mid_write",    // flow section streamed, table not yet written
    "store.writer.post_rename",  // new snapshot in place, dir not yet synced
    "store.writer.pre_fsync",    // all bytes written, file not yet synced
    "store.writer.pre_rename",   // tmp synced and closed, not yet renamed
    "store.writer.pre_write",    // tmp created, nothing written
};

}  // namespace lockdown::io
